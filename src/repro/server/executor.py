"""The concurrent executor: a worker pool plus single-flight coalescing.

Cached physical plans are **re-entrant** — operators rebuild their probe
tables, kernels, and cursors per execution, and relations are immutable
values — so one plan object can execute on N worker threads at once with
no coordination.  That is the whole point of PR 4's prepared-plan cache:
repeated queries from many clients cost planning *zero* times and
executor work N times.  This module supplies the N.

Two mechanisms:

* **Worker pool.**  Requests run on a fixed ``ThreadPoolExecutor``; the
  submitting thread (a TCP connection handler, or a caller of the
  in-process API) blocks on the future, so socket I/O and result
  serialization of one client overlap the executor work of the others.

* **Single-flight coalescing.**  Hot serving traffic is dominated by
  *identical* requests: the same cached query, the same bindings.  When a
  request arrives while an identical one (same plan-cache key, same
  parameters, same catalog version) is already executing, the newcomer
  does not execute at all — it waits on the in-flight execution's future
  and receives the same immutable result relation.  This is the classic
  thundering-herd guard (memcache lease / Go ``singleflight``): under a
  GIL, where K threads re-computing one answer cannot finish faster than
  one thread computing it once, coalescing is *the* mechanism that makes
  K clients cost ~1 execution.  Soundness: results are immutable, and a
  request only joins an execution whose catalog version matches the
  current one — any DDL in between forces a fresh execution.

The executor never parses, classifies, or admits; it runs callables.  The
:class:`~repro.server.server.QueryServer` composes it with the admission
layer and the session layer.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..obs import counter as obs_counter

__all__ = ["ConcurrentExecutor"]


class ConcurrentExecutor:
    """Runs query callables on a pool, coalescing identical in-flight work."""

    def __init__(self, workers: int = 4, coalesce: bool = True):
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-serve"
        )
        self.coalesce = coalesce
        self._inflight: Dict[Hashable, Future] = {}
        self._lock = threading.Lock()
        self._executed = 0
        self._coalesced = 0
        self._closed = False

    # ------------------------------------------------------------------
    def peek(self, key: Optional[Tuple[Hashable, ...]]) -> Optional[Future]:
        """The in-flight future for ``key``, or None.

        The server probes this *before* admission control: joining an
        execution that is already running consumes no executor or
        admission resources, so coalesced waiters must not occupy the
        (deliberately scarce) heavy-class slots while they wait.
        """
        if not self.coalesce or key is None:
            return None
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self._coalesced += 1
        if future is not None:
            obs_counter(
                "executor_coalesced_total",
                "Requests that joined an identical in-flight execution",
            ).inc()
        return future

    def submit(
        self, fn: Callable[[], Any], key: Optional[Tuple[Hashable, ...]] = None
    ) -> Future:
        """Schedule ``fn`` on the pool, returning its future.

        ``key`` identifies the request for coalescing — callers pass
        ``(plan-cache key, params, catalog version)`` or ``None`` to
        disable coalescing for this request (uncacheable shapes,
        unhashable parameters, non-read statements).  When an identical
        key is in flight, the existing future is returned and nothing new
        is scheduled.
        """
        if self._closed:
            raise RuntimeError("executor is shut down")
        if not self.coalesce or key is None:
            with self._lock:
                self._executed += 1
            obs_counter(
                "executor_executed_total", "Executions scheduled on the pool"
            ).inc()
            return self._pool.submit(fn)
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._coalesced += 1
            else:
                future = Future()
                self._inflight[key] = future
                self._executed += 1
        if existing is not None:
            obs_counter(
                "executor_coalesced_total",
                "Requests that joined an identical in-flight execution",
            ).inc()
            return existing
        obs_counter(
            "executor_executed_total", "Executions scheduled on the pool"
        ).inc()

        def leader() -> None:
            try:
                result = fn()
            except BaseException as error:  # propagate to every waiter
                with self._lock:
                    self._inflight.pop(key, None)
                future.set_exception(error)
            else:
                with self._lock:
                    self._inflight.pop(key, None)
                future.set_result(result)

        try:
            self._pool.submit(leader)
        except BaseException as error:
            # the pool refused (e.g. a concurrent shutdown): the flight
            # must not linger in _inflight, and anyone who already peeked
            # the future must be released with the error, not a hang
            with self._lock:
                self._inflight.pop(key, None)
            future.set_exception(error)
            raise
        return future

    def run(
        self, fn: Callable[[], Any], key: Optional[Tuple[Hashable, ...]] = None
    ) -> Any:
        """Synchronous :meth:`submit` — blocks until the result is ready."""
        return self.submit(fn, key).result()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "executed": self._executed,
                "coalesced": self._coalesced,
                "inflight": len(self._inflight),
            }

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "ConcurrentExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()
