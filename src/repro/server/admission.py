"""Cost-class admission control: limits, a bounded queue, load shedding.

A serving workload is not uniform: a cached point lookup costs tens of
microseconds, a cold six-way join costs milliseconds of planning plus a
large execution.  Admitting both through one unbounded thread pool lets a
burst of heavy queries starve the cheap traffic that makes up most of a
real workload.  The admission layer therefore:

* **classifies** each request by its *plan-cache cost class* — the class
  the prepared-plan cache recorded for the cached physical tree
  (``point`` / ``scan`` / ``join`` / ``heavy``, derived from the operator
  shapes and the optimizer's ``estimate_rows``; see
  :func:`repro.relational.plancache.cost_class_of`).  A query with no
  valid cache entry is ``cold``: it is about to pay full planning, which
  is exactly the work a loaded server should bound hardest.
* applies a **per-class concurrency limit** (a semaphore per class),
* parks excess requests in a **bounded per-class queue** (waiting for a
  slot up to a timeout), and
* **sheds load** — raises :class:`Overloaded` — when the queue is full or
  the wait times out, so a saturated server answers *something* quickly
  instead of collapsing into unbounded queueing.

The controller is engine-agnostic: it hands out admission slots as
context managers and never touches plans or relations.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..obs import counter as obs_counter
from ..obs import histogram as obs_histogram
from ..obs import record_wait
from ..obs import span as obs_span

__all__ = ["AdmissionPolicy", "AdmissionController", "Overloaded", "DEFAULT_LIMITS"]


#: Default per-class concurrent-execution limits.  Cached point lookups
#: are effectively unthrottled; cold planning and heavy joins are scarce.
#: DML has its own class (writers serialize on the database's write lock,
#: so admitting many would only deepen the lock queue — bound it early
#: and keep write bursts from occupying read slots).  Confidence queries
#: (``conf``) are the #P-hard tail of the workload: two at a time keeps
#: them from starving everything else while still overlapping an exact
#: computation with an approximate one.
DEFAULT_LIMITS: Mapping[str, int] = {
    "point": 64,
    "scan": 16,
    "join": 8,
    "heavy": 2,
    "conf": 2,
    "cold": 4,
    "dml": 4,
    # one compaction at a time: VACUUM rewrites whole segment stacks under
    # the write lock — a second one could only queue behind the first
    "vacuum": 1,
}


class Overloaded(RuntimeError):
    """The server shed this request (queue full or slot wait timed out)."""

    def __init__(self, cost_class: str, reason: str):
        super().__init__(f"overloaded ({cost_class}): {reason}")
        self.cost_class = cost_class
        self.reason = reason


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tunable admission knobs (immutable; share one across servers)."""

    #: class -> max concurrently executing requests of that class.
    limits: Mapping[str, int] = field(default_factory=lambda: dict(DEFAULT_LIMITS))
    #: Max requests *waiting* for a slot, per class; beyond this, shed.
    queue_limit: int = 32
    #: Seconds a queued request waits for a slot before being shed.
    queue_timeout: float = 5.0

    def limit_for(self, cost_class: str) -> int:
        try:
            return max(1, int(self.limits[cost_class]))
        except KeyError:
            # an unknown class is treated like cold work: conservative
            return max(1, int(self.limits.get("cold", 4)))


class _ClassGate:
    __slots__ = ("semaphore", "waiting", "lock", "admitted", "queued", "shed")

    def __init__(self, limit: int):
        self.semaphore = threading.Semaphore(limit)
        self.waiting = 0
        self.lock = threading.Lock()
        self.admitted = 0
        self.queued = 0
        self.shed = 0


class AdmissionController:
    """Hands out per-cost-class admission slots; sheds when saturated."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy or AdmissionPolicy()
        self._gates: Dict[str, _ClassGate] = {}
        self._gates_lock = threading.Lock()

    def _gate(self, cost_class: str) -> _ClassGate:
        gate = self._gates.get(cost_class)
        if gate is None:
            with self._gates_lock:
                gate = self._gates.get(cost_class)
                if gate is None:
                    gate = _ClassGate(self.policy.limit_for(cost_class))
                    self._gates[cost_class] = gate
        return gate

    @contextmanager
    def admit(self, cost_class: str):
        """Acquire an execution slot for ``cost_class`` (a context manager).

        Fast path: an uncontended class admits with one non-blocking
        semaphore acquire.  Contended: the request queues (bounded) until
        a slot frees or the timeout passes; both overflow and timeout shed
        the request with :class:`Overloaded`.
        """
        gate = self._gate(cost_class)
        # the span covers slot *acquisition* only (the wait a client can
        # see), so it closes before execution and sits as a sibling of the
        # execute span in the trace
        with obs_span("admission", cost_class=cost_class) as sp:
            if gate.semaphore.acquire(blocking=False):
                with gate.lock:
                    gate.admitted += 1
                sp.set(queued=False)
            else:
                sp.set(queued=True)
                with gate.lock:
                    if gate.waiting >= self.policy.queue_limit:
                        gate.shed += 1
                        obs_counter(
                            "admission_shed_total", "Requests shed by class"
                        ).inc(cls=cost_class)
                        raise Overloaded(cost_class, "admission queue full")
                    gate.waiting += 1
                    gate.queued += 1
                started = time.perf_counter()
                try:
                    acquired = gate.semaphore.acquire(
                        timeout=self.policy.queue_timeout
                    )
                finally:
                    waited = time.perf_counter() - started
                    with gate.lock:
                        gate.waiting -= 1
                    obs_histogram(
                        "admission_wait_seconds",
                        "Seconds queued requests waited for a slot",
                    ).observe(waited, cls=cost_class)
                    record_wait(cost_class, waited)
                if not acquired:
                    with gate.lock:
                        gate.shed += 1
                    obs_counter(
                        "admission_shed_total", "Requests shed by class"
                    ).inc(cls=cost_class)
                    raise Overloaded(cost_class, "timed out waiting for a slot")
                with gate.lock:
                    gate.admitted += 1
            obs_counter(
                "admission_admitted_total", "Requests admitted by class"
            ).inc(cls=cost_class)
        try:
            yield
        finally:
            gate.semaphore.release()

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-class admitted/queued/shed/waiting counters."""
        out: Dict[str, Dict[str, int]] = {}
        with self._gates_lock:
            gates = dict(self._gates)
        for name, gate in sorted(gates.items()):
            with gate.lock:
                out[name] = {
                    "admitted": gate.admitted,
                    "queued": gate.queued,
                    "shed": gate.shed,
                    "waiting": gate.waiting,
                }
        return out
