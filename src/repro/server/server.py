"""The query-serving frontend: in-process API plus a TCP line protocol.

:class:`QueryServer` composes the serving subsystem over one shared
:class:`~repro.core.udatabase.UDatabase`:

* sessions (:meth:`QueryServer.session`) own per-connection statements
  and bindings (:mod:`repro.server.session`),
* an :class:`~repro.server.admission.AdmissionController` classifies each
  request by plan-cache cost class and bounds per-class concurrency,
* a :class:`~repro.server.executor.ConcurrentExecutor` runs cached plans
  on a worker pool, coalescing identical in-flight requests.

The TCP mode (:meth:`QueryServer.serve_tcp`, or ``python -m
repro.server``) speaks newline-delimited JSON — one request object per
line, one response object per line::

    -> {"op": "query",   "sql": "possible (select ...)", "params": []}
    <- {"ok": true, "columns": ["a"], "rows": [[1], [2]]}
    -> {"op": "prepare", "name": "q1", "sql": "... where x = $1"}
    <- {"ok": true, "prepared": "q1", "parameters": 1}
    -> {"op": "execute", "name": "q1", "params": [7]}
    <- {"ok": true, "columns": [...], "rows": [...]}
    -> {"op": "query",   "sql": "insert into r values (9, $1)", "params": ["x"]}
    <- {"ok": true, "dml": "INSERT", "count": 1, "variables": []}
    -> {"op": "stats"}
    <- {"ok": true, "stats": {...}}
    -> {"op": "trace",   "sql": "possible (select ...)"}
    <- {"ok": true, "columns": [...], "rows": [...], "trace": {...span tree...}}
    -> {"op": "metrics"}
    <- {"ok": true, "metrics": "...Prometheus text..."}

DML (INSERT/UPDATE/DELETE) rides the same ``query``/``prepare``/
``execute`` ops: it admits under the dedicated ``dml`` cost class and is
*never* coalesced — two identical INSERTs are two writes, not one shared
flight.

Transaction control and maintenance ride the ``query`` op too::

    -> {"op": "query", "sql": "begin"}
    <- {"ok": true, "txn": {"status": "open", "statements": 0, ...}}
    -> {"op": "query", "sql": "commit"}
    <- {"ok": true, "txn": {"status": "committed", "statements": 2,
                             "relations": ["r"], "variables": []}}
    -> {"op": "query", "sql": "vacuum r"}
    <- {"ok": true, "vacuum": {"relations": ["r"], "partitions": 1, ...}}

A commit that loses the first-updater race answers ``{"ok": false,
"kind": "conflict", ...}`` (the transaction is rolled back).  A shed
request answers ``{"ok": false, "kind": "overloaded", ...}``
immediately — load shedding is a *response*, not a dropped connection.
Values without a JSON representation (dates, decimals) are serialized
through ``str``.

Constructing the server with ``auto_compact=True`` (or a
:class:`~repro.core.udatabase.CompactionPolicy`) starts a background
thread that wakes after each completed write and compacts any partition
whose segment health crosses the policy thresholds.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.dml import DMLResult
from ..core.prepared import PreparedDML, PreparedQuery
from ..core.probability import ConfidenceAnswer
from ..core.query import Certain, Conf
from ..core.translate import query_cache_key
from ..core.txn import TransactionConflict, TxnResult
from ..core.udatabase import CompactionPolicy, CompactionResult, UDatabase
from ..core.urelation import URelation
from ..obs import (
    accounting_snapshot,
    activate,
    counter as obs_counter,
    current_trace,
    metrics_snapshot,
    record_finished,
    record_render,
    render_prometheus,
    request_trace,
    slow_queries,
    span as obs_span,
    start_trace,
    workload_snapshot,
)
from ..obs.report import advisory_report
from ..relational.plancache import (
    cached_cost_class,
    plan_cache_stats,
    publish_plan_cache_metrics,
)
from ..relational.relation import Relation
from .admission import AdmissionController, AdmissionPolicy, Overloaded
from .executor import ConcurrentExecutor
from .session import Session, SnapshotChanged

__all__ = ["QueryServer", "TCPHandle"]


class QueryServer:
    """Serves queries over one shared UDatabase from many sessions."""

    def __init__(
        self,
        udb: UDatabase,
        workers: int = 4,
        policy: Optional[AdmissionPolicy] = None,
        coalesce: bool = True,
        mode: str = "columns",
        use_indexes: bool = True,
        parallel: int = 0,
        auto_compact: Any = None,
    ):
        self.udb = udb
        self.mode = mode
        self.use_indexes = use_indexes
        #: Partition-parallel scan fan-out handed to the planner for every
        #: statement executed through this server (0 = serial plans).
        self.parallel = parallel
        self.admission = AdmissionController(policy)
        self.executor = ConcurrentExecutor(workers=workers, coalesce=coalesce)
        self._sessions_opened = 0
        # RLock: ``query`` opens its default session while holding the lock
        self._lock = threading.RLock()
        self._default_session: Optional[Session] = None
        #: Background compaction: ``auto_compact=True`` uses the default
        #: :class:`~repro.core.udatabase.CompactionPolicy`; a policy
        #: instance tunes the thresholds; None/False disables the thread.
        self._compact_policy: Optional[CompactionPolicy] = None
        self._compact_wake = threading.Event()
        self._compact_stop = threading.Event()
        self._compact_thread: Optional[threading.Thread] = None
        if auto_compact:
            self._compact_policy = (
                auto_compact
                if isinstance(auto_compact, CompactionPolicy)
                else CompactionPolicy()
            )
            self._compact_thread = threading.Thread(
                target=self._compact_loop, name="repro-auto-compact", daemon=True
            )
            self._compact_thread.start()
        #: Rendered-response cache for the TCP frontend: result object ->
        #: serialized JSON line.  Coalesced requests share one immutable
        #: result; serializing it once per *result* instead of once per
        #: waiter removes the dominant per-request cost of hot cached
        #: queries.  Keys are object ids, sound because the entry pins the
        #: result (bounded, LRU).
        self._render_lock = threading.Lock()
        self._render_cache: "OrderedDict[int, Tuple[Any, bytes]]" = OrderedDict()
        self._render_limit = 64

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def session(self, **overrides: Any) -> Session:
        """Open a new session bound to this server's executor and limits."""
        with self._lock:
            self._sessions_opened += 1
        obs_counter("sessions_opened_total", "Sessions opened on this process").inc()
        return Session(
            self.udb,
            server=self,
            mode=overrides.get("mode", self.mode),
            use_indexes=overrides.get("use_indexes", self.use_indexes),
            parallel=overrides.get("parallel", self.parallel),
        )

    def query(self, sql: str, params: Sequence[Any] = ()):
        """Convenience one-shot query through a server-owned session."""
        with self._lock:
            if self._default_session is None:
                self._default_session = self.session()
            session = self._default_session
        return session.execute(sql, params)

    # ------------------------------------------------------------------
    # the request path: classify -> admit -> (coalesced) execute
    # ------------------------------------------------------------------
    def execute(
        self,
        prepared: PreparedQuery,
        params: Tuple[Any, ...] = (),
        session: Optional[Session] = None,
    ):
        """Run a prepared statement through admission + the worker pool.

        The admission class comes from the prepared-plan cache: a valid
        cached entry serves its recorded cost class, anything else is
        ``cold`` (it is about to pay planning).  Identical in-flight
        requests (same plan-cache key, bindings, and catalog version)
        coalesce onto one execution.
        """
        mode = session.mode if session is not None else self.mode
        use_indexes = session.use_indexes if session is not None else self.use_indexes
        parallel = session.parallel if session is not None else self.parallel
        trace = current_trace()
        if isinstance(prepared, PreparedDML):
            # writes admit under their own class and never coalesce:
            # two identical INSERTs are two writes, not one shared flight
            if trace is not None:
                trace.root.set(cost_class="dml")
            with self.admission.admit("dml"):
                with obs_span("execute") as exec_span:
                    result = self.executor.run(
                        self._bridged(lambda: prepared.run(*params), trace, exec_span),
                        key=None,
                    )
            # each completed write nudges the background compactor — the
            # trigger is a cheap event set; the thread re-checks thresholds
            if self._compact_thread is not None:
                self._compact_wake.set()
            return result
        # classification peeks at the plan cache under the key the
        # execution path actually stores: execute_query strips Certain
        # wrappers and plans (and caches) their relational core
        classify_query = prepared.query
        while isinstance(classify_query, Certain):
            classify_query = classify_query.child
        class_key = query_cache_key(
            classify_query,
            self.udb,
            mode=mode,
            use_indexes=use_indexes,
            parallel=parallel,
        )
        # a conf query's class is known from its shape alone, so even the
        # first (uncached) execution admits under the conf limit — the
        # #P-hard tail must never slip in through the cold class
        if isinstance(classify_query, Conf):
            cost_class = "conf"
        else:
            cost_class = cached_cost_class(class_key) or "cold"
        # coalescing keys the *full* tree (a certain(q) answer is not the
        # answer of its core — the two must never share one flight)
        key = (
            class_key
            if classify_query is prepared.query
            else query_cache_key(
                prepared.query,
                self.udb,
                mode=mode,
                use_indexes=use_indexes,
                parallel=parallel,
            )
        )
        coalesce_key: Optional[Tuple[Any, ...]]
        if key is None:
            coalesce_key = None
        else:
            coalesce_key = (key, params, self.udb.catalog_version)
            try:
                hash(coalesce_key)
            except TypeError:  # unhashable binding: execute un-coalesced
                coalesce_key = None

        if trace is not None:
            trace.root.set(cost_class=cost_class)

        def work():
            return prepared.run(
                *params, mode=mode, use_indexes=use_indexes, parallel=parallel
            )

        # join an identical in-flight execution without consuming an
        # admission slot — a waiter costs nothing, and hot-query bursts
        # must coalesce even when their class admits only two executions
        inflight = self.executor.peek(coalesce_key)
        if inflight is not None:
            # a waiter has no execution internals of its own — the leader
            # owns the plan/operator spans
            with obs_span("execute", coalesced=True):
                return inflight.result()
        with self.admission.admit(cost_class):
            with obs_span("execute") as exec_span:
                return self.executor.run(
                    self._bridged(work, trace, exec_span), key=coalesce_key
                )

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def vacuum(self, table: Optional[str] = None) -> CompactionResult:
        """Compact segment stacks now (the server-side face of ``VACUUM``).

        Admits under the dedicated ``vacuum`` class (limit 1: a second
        VACUUM could only queue behind the first on the write lock) and
        runs on the caller's thread — compaction serializes on the
        database write lock, so a pool slot would buy nothing.
        """
        trace = current_trace()
        if trace is not None:
            trace.root.set(cost_class="vacuum")
        with self.admission.admit("vacuum"):
            with obs_span("execute"):
                return self.udb.compact(table)

    def maybe_compact(
        self, policy: Optional[CompactionPolicy] = None
    ) -> CompactionResult:
        """Threshold-gated compaction: only partitions whose health is due."""
        with self.admission.admit("vacuum"):
            return self.udb.maybe_compact(policy or self._compact_policy)

    def _compact_loop(self) -> None:
        """Background trigger: wake after writes, compact what is due.

        Waits on ``_compact_wake`` (set by every completed DML) with a
        periodic timeout so externally applied churn (direct ``udb`` DML)
        is also eventually reclaimed.  Failures are swallowed — a broken
        compaction pass must never take the serving loop down with it.
        """
        while not self._compact_stop.is_set():
            self._compact_wake.wait(timeout=1.0)
            if self._compact_stop.is_set():
                return
            self._compact_wake.clear()
            try:
                self.maybe_compact()
            except Exception:
                obs_counter(
                    "compaction_errors_total",
                    "Background compaction passes that raised",
                ).inc()

    @staticmethod
    def _bridged(work, trace, exec_span):
        """Carry the request's trace context onto the worker pool.

        ``ThreadPoolExecutor`` does not propagate context variables, so
        the request thread captures ``(trace, execute-span)`` here and the
        pool thread re-installs them — plan and operator spans then nest
        under the request's execute span.  A coalesced follower may run
        under the *leader's* bridge; only the leader's trace sees the
        execution internals, which is exactly what happened.
        """
        if trace is None:
            return work

        def bridged():
            with activate(trace, exec_span):
                return work()

        return bridged

    def render_result(self, result: Any) -> bytes:
        """The serialized JSON response line for a statement result.

        Memoized per result object (see ``_render_cache``): the N-1
        coalesced waiters of a single-flight execution — and every later
        request served the same cached result — reuse one serialization.
        """
        key = id(result)
        with self._render_lock:
            hit = self._render_cache.get(key)
            if hit is not None and hit[0] is result:
                self._render_cache.move_to_end(key)
                return hit[1]
        line = json.dumps(_result_payload(result), default=str).encode("utf-8") + b"\n"
        with self._render_lock:
            self._render_cache[key] = (result, line)
            self._render_cache.move_to_end(key)
            while len(self._render_cache) > self._render_limit:
                self._render_cache.popitem(last=False)
        return line

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The unified observability snapshot (schema: server/README.md).

        Stable keys: ``sessions_opened``, ``admission``, ``executor``,
        ``plan_cache``, ``catalog_version`` (the pre-obs surface, shapes
        unchanged) plus ``metrics`` (the registry snapshot with
        p50/p95/p99 per histogram series), ``segment_log`` (per-partition
        write-path health, refreshed by this call), and ``slow_queries``
        (the slowest traces, slowest first), plus ``accounting``
        (per-session and per-cost-class resource tallies).
        """
        publish_plan_cache_metrics()  # refresh the plan_cache_* gauges
        return {
            "sessions_opened": self._sessions_opened,
            "admission": self.admission.stats(),
            "executor": self.executor.stats(),
            "plan_cache": plan_cache_stats(),
            "catalog_version": self.udb.catalog_version,
            "metrics": metrics_snapshot(),
            "segment_log": self.udb.segment_health(),
            "slow_queries": slow_queries(limit=5),
            "accounting": accounting_snapshot(),
        }

    def close(self) -> None:
        if self._compact_thread is not None:
            self._compact_stop.set()
            self._compact_wake.set()
            self._compact_thread.join(timeout=5)
            self._compact_thread = None
        self.executor.shutdown()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # TCP mode
    # ------------------------------------------------------------------
    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> "TCPHandle":
        """Start the line-protocol TCP frontend on a background thread.

        ``port=0`` binds an ephemeral port; the returned handle exposes
        the bound ``address`` and a ``close()`` that stops the listener
        (sessions die with their connections).
        """
        tcp = _TCPServer((host, port), _ConnectionHandler)
        tcp.query_server = self
        thread = threading.Thread(
            target=tcp.serve_forever, name="repro-serve-tcp", daemon=True
        )
        thread.start()
        return TCPHandle(tcp, thread)


class TCPHandle:
    """A running TCP frontend: its bound address and a clean shutdown."""

    def __init__(self, tcp: "_TCPServer", thread: threading.Thread):
        self._tcp = tcp
        self._thread = thread
        self.address: Tuple[str, int] = tcp.server_address

    def close(self) -> None:
        self._tcp.shutdown()
        self._tcp.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "TCPHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    query_server: QueryServer  # attached by serve_tcp


def _result_payload(result: Any) -> Dict[str, Any]:
    """JSON-shape a statement result (relation, U-relation, index, None)."""
    if isinstance(result, URelation):
        relation = result.relation
        return {
            "ok": True,
            "columns": list(relation.schema.names),
            "rows": [list(row) for row in relation.rows],
            "urelation": True,
        }
    if isinstance(result, ConfidenceAnswer):
        return {
            "ok": True,
            "columns": list(result.schema.names),
            "rows": [list(row) for row in result.rows],
            "conf": dict(result.conf),
        }
    if isinstance(result, Relation):
        return {
            "ok": True,
            "columns": list(result.schema.names),
            "rows": [list(row) for row in result.rows],
        }
    if isinstance(result, DMLResult):
        return {
            "ok": True,
            "dml": result.statement.upper(),
            "count": result.count,
            "variables": list(result.variables),
        }
    if isinstance(result, TxnResult):
        return {
            "ok": True,
            "txn": {
                "status": result.status,
                "statements": result.statements,
                "relations": list(result.relations),
                "variables": list(result.variables),
            },
        }
    if isinstance(result, CompactionResult):
        return {
            "ok": True,
            "vacuum": {
                "relations": list(result.relations),
                "partitions": result.partitions,
                "segments_before": result.segments_before,
                "rows_dropped": result.rows_dropped,
                "seconds": result.seconds,
            },
        }
    # index DDL returns the Index (CREATE) or None (DROP); an Index must
    # not be mistaken for a result set (it carries a .relation too)
    return {"ok": True, "result": None if result is None else str(result)}


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One TCP connection == one session; JSON objects, one per line."""

    def handle(self) -> None:
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        server: QueryServer = self.server.query_server
        session = server.session()
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                response = self._dispatch(server, session, json.loads(line))
            except Overloaded as error:
                response = {
                    "ok": False,
                    "kind": "overloaded",
                    "class": error.cost_class,
                    "error": str(error),
                }
            except SnapshotChanged as error:
                response = {"ok": False, "kind": "snapshot", "error": str(error)}
            except TransactionConflict as error:
                response = {"ok": False, "kind": "conflict", "error": str(error)}
            except Exception as error:  # protocol survives bad statements
                response = {"ok": False, "kind": "error", "error": str(error)}
            if response is None:  # close requested
                break
            if not isinstance(response, bytes):  # pre-rendered results skip dumps
                response = json.dumps(response, default=str).encode("utf-8") + b"\n"
            self.wfile.write(response)
            self.wfile.flush()

    def _dispatch(
        self, server: QueryServer, session: Session, request: Dict[str, Any]
    ) -> Any:  # a response dict, pre-rendered bytes, or None (close)
        op = request.get("op", "query")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "close":
            return None
        if op == "stats":
            return {"ok": True, "stats": server.stats()}
        if op == "metrics":
            publish_plan_cache_metrics()  # plan_cache_* gauges in exposition
            return {"ok": True, "metrics": render_prometheus()}
        if op == "workload":
            return {
                "ok": True,
                "workload": workload_snapshot(limit=request.get("limit")),
            }
        if op == "report":
            return {"ok": True, "report": advisory_report()}
        if op == "prepare":
            prepared = session.prepare(request["name"], request["sql"])
            return {
                "ok": True,
                "prepared": request["name"],
                "parameters": prepared.parameter_count,
            }
        if op == "execute":
            # the handler owns the trace so the render span joins it
            # (session-started traces would close before serialization)
            with request_trace():
                result = session.execute_prepared(
                    request["name"], *tuple(request.get("params", ()))
                )
                return self._render(server, session, result)
        if op == "query":
            with request_trace(sql=request["sql"]):
                result = session.execute(
                    request["sql"], tuple(request.get("params", ()))
                )
                return self._render(server, session, result)
        if op == "trace":
            # an explicit trace request: runs the statement like "query"
            # but returns the span tree alongside the result.  force=True
            # makes this work even under REPRO_OBS=off — the caller asked.
            with start_trace(force=True) as trace:
                trace.root.set(sql=request.get("sql", ""))
                if "name" in request:
                    result = session.execute_prepared(
                        request["name"], *tuple(request.get("params", ()))
                    )
                else:
                    result = session.execute(
                        request["sql"], tuple(request.get("params", ()))
                    )
                with obs_span("render") as sp:
                    payload = _result_payload(result)
                    sp.set(rows=len(payload.get("rows", ())))
            record_finished(trace)
            payload["trace"] = trace.to_dict()
            return payload
        return {"ok": False, "kind": "error", "error": f"unknown op {op!r}"}

    @staticmethod
    def _render(server: QueryServer, session: Session, result: Any) -> bytes:
        """Serialize a result under a ``render`` span on the active trace."""
        with obs_span("render") as sp:
            line = server.render_result(result)
            sp.set(bytes=len(line))
        trace = current_trace()
        record_render(
            session.accounting_id,
            len(line),
            trace.root.attrs.get("cost_class") if trace is not None else None,
        )
        return line
