"""``repro.server`` — the concurrent query-serving subsystem.

The serving stack the ROADMAP's north star asks for, built on PR 4's
prepared-plan cache (re-entrant cached physical plans, ``$n`` prepared
statements, catalog-version invalidation):

* :class:`~repro.server.session.Session` — per-connection prepared
  statements and bindings on one shared UDatabase, with optimistic
  catalog-version snapshot reads (no ``BEGIN`` needed),
* :class:`~repro.server.executor.ConcurrentExecutor` — cached plans on a
  worker pool, identical in-flight requests coalesced single-flight,
* :class:`~repro.server.admission.AdmissionController` — per-cost-class
  concurrency limits with a bounded queue and load shedding, classified
  by the plan cache (cached point lookup vs. cold multi-way join),
* :class:`~repro.server.server.QueryServer` — the in-process API and the
  newline-JSON TCP frontend (``python -m repro.server``).

Partition-parallel scans (``parallel=K``) plug in underneath through the
planner's :class:`~repro.relational.physical.ParallelScan` operator.

Quick start::

    from repro.server import QueryServer

    server = QueryServer(udb, workers=8)
    session = server.session()
    session.prepare("by_type", "possible (select id from r where type = $1)")
    answer = session.execute_prepared("by_type", "Tank")
"""

from .admission import AdmissionController, AdmissionPolicy, Overloaded
from .executor import ConcurrentExecutor
from .server import QueryServer, TCPHandle
from .session import Session, SnapshotChanged

__all__ = [
    "QueryServer",
    "TCPHandle",
    "Session",
    "SnapshotChanged",
    "AdmissionController",
    "AdmissionPolicy",
    "Overloaded",
    "ConcurrentExecutor",
]
