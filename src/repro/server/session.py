"""Per-connection sessions: statement namespaces, bindings, snapshots.

A :class:`Session` is the unit of client state on a shared
:class:`~repro.core.udatabase.UDatabase`.  It owns:

* **a prepared-statement namespace** — ``PREPARE``-style named statements
  (:meth:`Session.prepare`) plus a transparent by-text statement cache
  (:meth:`Session.execute`).  Each session *parses its own statements*,
  which is not a nicety but the concurrency mechanism: every parse gets
  its own ``$n`` binding store, so two sessions running ``where x = $1``
  with different bindings never touch each other's parameters.  (The
  physical plan is still shared across sessions for parameter-free
  statements — structural keys are equal — while parameterized statements
  plan once per session, keyed by store identity, and then go
  executor-only for every binding.)
* **read consistency via catalog-version snapshots** — there is no
  ``BEGIN``: within one statement, consistency is automatic (a plan
  embeds the immutable relation objects it was planned over, so a
  concurrent table replacement cannot tear a running query).  *Across*
  statements, :meth:`Session.snapshot` gives optimistic repeatable reads:
  it records the catalog version, and every statement in the block
  verifies the version is unchanged before executing, raising
  :class:`SnapshotChanged` when concurrent DDL moved the catalog under
  the session.

Sessions serialize their own statements (one client speaks one protocol
connection); different sessions run fully in parallel through the
server's executor.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.prepared import PreparedDML, PreparedQuery
from ..core.udatabase import UDatabase
from ..obs import counter as obs_counter
from ..obs import current_trace, request_trace
from ..obs import span as obs_span

__all__ = ["Session", "SnapshotChanged"]

#: Per-session by-text statement cap (mirrors the per-udb cap in
#: :mod:`repro.sql`): ad-hoc texts with inline literals must not grow the
#: namespace without bound.
_SESSION_STATEMENT_LIMIT = 256


class SnapshotChanged(RuntimeError):
    """Concurrent DDL moved the catalog under a snapshot read."""

    def __init__(self, expected: int, current: int):
        super().__init__(
            f"catalog version moved from {expected} to {current} during a "
            f"snapshot read; re-issue the statement outside the snapshot "
            f"or take a new one"
        )
        self.expected = expected
        self.current = current
        # every optimistic-read conflict is constructed here, whichever
        # session method detects it — one counter covers them all
        obs_counter(
            "snapshot_conflicts_total",
            "Optimistic snapshot reads aborted by concurrent catalog movement",
        ).inc()


class Session:
    """One client's statements, bindings, and snapshot on a shared UDatabase."""

    def __init__(
        self,
        udb: UDatabase,
        server: Optional[Any] = None,
        mode: str = "columns",
        use_indexes: bool = True,
        parallel: int = 0,
    ):
        self.udb = udb
        #: The owning :class:`~repro.server.server.QueryServer`, or None
        #: for a standalone session (statements then execute inline on the
        #: calling thread, without admission control or coalescing).
        self.server = server
        self.mode = mode
        self.use_indexes = use_indexes
        self.parallel = parallel
        self._named: Dict[str, PreparedQuery] = {}
        self._by_text: Dict[str, PreparedQuery] = {}
        #: Serializes this session's statements (a session models one
        #: connection; its requests are a sequence, not a pool).
        self._lock = threading.RLock()
        self._snapshot_version: Optional[int] = None
        self.statements_run = 0

    # ------------------------------------------------------------------
    # statement namespace
    # ------------------------------------------------------------------
    def _parse(self, sql: str) -> PreparedQuery:
        """Parse SQL into a session-owned statement (own ``$n`` store).

        Queries become :class:`PreparedQuery`, DML becomes
        :class:`PreparedDML` — both session-owned, so concurrent sessions
        binding ``$n`` slots of identical texts never share state.
        """
        from ..core.dml import Delete, Insert, Update
        from ..sql.parser import CreateIndex, DropIndex, parse

        statement = parse(sql)
        if isinstance(statement, (CreateIndex, DropIndex)):
            raise ValueError("cannot prepare DDL; use Session.execute_ddl")
        if isinstance(statement, (Insert, Update, Delete)):
            return PreparedDML(statement, self.udb, sql=sql)
        return PreparedQuery(statement, self.udb, sql=sql)

    def prepare(self, name: str, sql: str) -> PreparedQuery:
        """Register a named prepared statement in this session's namespace.

        Re-preparing a name replaces it (the PostgreSQL ``PREPARE``
        convention is an error; replacement is friendlier for a serving
        loop and costs nothing).  The statement belongs to this session:
        its ``$n`` bindings are invisible to every other session.
        """
        prepared = self._parse(sql)
        with self._lock:
            self._named[name] = prepared
        return prepared

    def deallocate(self, name: str) -> None:
        """Drop a named prepared statement (KeyError when absent)."""
        with self._lock:
            del self._named[name]

    def statement(self, name: str) -> PreparedQuery:
        """Look up a named prepared statement."""
        with self._lock:
            try:
                return self._named[name]
            except KeyError:
                raise KeyError(
                    f"no prepared statement {name!r} in this session; "
                    f"have {sorted(self._named)}"
                ) from None

    def _by_text_statement(self, sql: str) -> PreparedQuery:
        with self._lock:
            with obs_span("parse") as sp:
                cached = self._by_text.get(sql)
                sp.set(cached=cached is not None)
                if cached is None:
                    cached = self._parse(sql)
                    if len(self._by_text) >= _SESSION_STATEMENT_LIMIT:
                        self._by_text.clear()
                    self._by_text[sql] = cached
                return cached

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "_Snapshot":
        """Optimistic repeatable reads: ``with session.snapshot(): ...``.

        Statements inside the block verify the catalog version they
        started under is still current; concurrent DDL raises
        :class:`SnapshotChanged` instead of silently mixing pre- and
        post-DDL answers across the block's statements.
        """
        return _Snapshot(self)

    def _check_snapshot(self) -> None:
        expected = self._snapshot_version
        if expected is not None:
            current = self.udb.catalog_version
            if current != expected:
                raise SnapshotChanged(expected, current)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()):
        """Run a SQL statement (queries, DML, index DDL), returning its result.

        Queries and DML are prepared transparently (cached by text in
        this session) and routed through the server's admission + executor
        layers when the session is server-bound.  DDL executes inline;
        DDL and DML are rejected inside a snapshot block (the session's
        own write would break the snapshot's guarantee).
        """
        from ..sql.parser import CreateIndex, DropIndex, parse

        with self._lock:
            self._check_snapshot()
            with request_trace(sql=sql):
                head = sql.lstrip().lower()
                if head.startswith(("create", "drop")):
                    statement = parse(sql)
                    if isinstance(statement, (CreateIndex, DropIndex)):
                        trace = current_trace()
                        if trace is not None:
                            trace.root.set(cost_class="ddl")
                        return self._apply_ddl(statement)
                prepared = self._by_text_statement(sql)
                return self._run(prepared, tuple(params))

    def execute_prepared(self, name: str, *params: Any):
        """Run a named prepared statement with the given bindings."""
        with self._lock:
            self._check_snapshot()
            prepared = self.statement(name)
            with request_trace(sql=prepared.sql or ""):
                with obs_span("parse", cached=True):
                    pass  # parsed at PREPARE time; keep the span present
                return self._run(prepared, params)

    def run(self, prepared: PreparedQuery, *params: Any):
        """Run a session-owned :class:`PreparedQuery` (from :meth:`prepare`)."""
        with self._lock:
            self._check_snapshot()
            with request_trace(sql=prepared.sql or ""):
                return self._run(prepared, params)

    def execute_ddl(self, sql: str):
        """Apply index DDL to the shared database (never inside a snapshot)."""
        from ..sql.parser import CreateIndex, DropIndex, parse

        statement = parse(sql)
        if not isinstance(statement, (CreateIndex, DropIndex)):
            raise ValueError("execute_ddl takes CREATE INDEX / DROP INDEX only")
        with self._lock:
            return self._apply_ddl(statement)

    def _apply_ddl(self, statement):
        """Apply a parsed DDL statement (caller holds the session lock).

        Mirrors :func:`repro.sql.execute_sql`'s DDL branch — no replace on
        CREATE, so a name collision with a different definition errors
        instead of destroying an existing access path.
        """
        from ..sql.parser import CreateIndex

        if self._snapshot_version is not None:
            raise SnapshotChanged(self._snapshot_version, self.udb.catalog_version)
        db = self.udb.to_database()
        if isinstance(statement, CreateIndex):
            return db.create_index(
                statement.name,
                statement.table,
                list(statement.columns),
                kind=statement.kind,
            )
        db.drop_index(statement.name)
        return None

    def _run(self, prepared: PreparedQuery, params: Tuple[Any, ...]):
        if isinstance(prepared, PreparedDML) and self._snapshot_version is not None:
            # a session's own write would invalidate the snapshot it is
            # reading under — same contract as DDL
            raise SnapshotChanged(self._snapshot_version, self.udb.catalog_version)
        self.statements_run += 1
        if self.server is not None:
            return self.server.execute(prepared, params, session=self)
        return prepared.run(
            *params,
            mode=self.mode,
            use_indexes=self.use_indexes,
            parallel=self.parallel,
        )

    def __repr__(self) -> str:
        bound = "server-bound" if self.server is not None else "standalone"
        return (
            f"Session({bound}, named={sorted(self._named)}, "
            f"statements_run={self.statements_run})"
        )


class _Snapshot:
    """Context manager recording/clearing a session's snapshot version."""

    def __init__(self, session: Session):
        self._session = session

    def __enter__(self) -> Session:
        session = self._session
        with session._lock:
            if session._snapshot_version is not None:
                raise RuntimeError("session snapshots do not nest")
            session._snapshot_version = session.udb.catalog_version
        return session

    def __exit__(self, *exc: Any) -> None:
        with self._session._lock:
            self._session._snapshot_version = None
