"""Per-connection sessions: statement namespaces, bindings, snapshots.

A :class:`Session` is the unit of client state on a shared
:class:`~repro.core.udatabase.UDatabase`.  It owns:

* **a prepared-statement namespace** — ``PREPARE``-style named statements
  (:meth:`Session.prepare`) plus a transparent by-text statement cache
  (:meth:`Session.execute`).  Each session *parses its own statements*,
  which is not a nicety but the concurrency mechanism: every parse gets
  its own ``$n`` binding store, so two sessions running ``where x = $1``
  with different bindings never touch each other's parameters.  (The
  physical plan is still shared across sessions for parameter-free
  statements — structural keys are equal — while parameterized statements
  plan once per session, keyed by store identity, and then go
  executor-only for every binding.)
* **read consistency via catalog-version snapshots** — within one
  statement, consistency is automatic (a plan embeds the immutable
  relation objects it was planned over, so a concurrent table
  replacement cannot tear a running query).  *Across* statements,
  :meth:`Session.snapshot` gives optimistic repeatable reads: it records
  the catalog version, and every statement in the block verifies the
  version is unchanged before executing, raising :class:`SnapshotChanged`
  when concurrent DDL moved the catalog under the session.
* **multi-statement write atomicity** — ``BEGIN``/``COMMIT``/``ROLLBACK``
  (or :meth:`Session.begin` / :meth:`Session.commit` /
  :meth:`Session.rollback`) group this connection's DML into one
  :class:`~repro.core.txn.Transaction`: statements stage against a
  private overlay (invisible to every other session) and COMMIT
  publishes them as one atomic partition swap, refusing with
  :class:`~repro.core.txn.TransactionConflict` if a concurrent writer
  touched the same relations.  Queries inside a transaction read the
  committed base state; staged DML is applied inline on the calling
  thread (publication, at COMMIT, is the only catalog mutation).

Sessions serialize their own statements (one client speaks one protocol
connection); different sessions run fully in parallel through the
server's executor.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.prepared import PreparedDML, PreparedQuery
from ..core.txn import Transaction, TxnResult
from ..core.udatabase import UDatabase
from ..obs import counter as obs_counter
from ..obs import current_trace, record_statement, register_session, request_trace
from ..obs import span as obs_span

__all__ = ["Session", "SnapshotChanged"]

#: Per-session by-text statement cap (mirrors the per-udb cap in
#: :mod:`repro.sql`): ad-hoc texts with inline literals must not grow the
#: namespace without bound.
_SESSION_STATEMENT_LIMIT = 256


def _result_rows(result: Any) -> int:
    """Row count of a statement result, for resource accounting.

    Duck-typed over the three result shapes a session can return:
    relations (certain or uncertain), DML results (rows written), and
    scalars (confidence values — zero rows).
    """
    rows = getattr(result, "rows", None)
    if rows is not None:
        return len(rows)
    inner = getattr(result, "relation", None)
    if inner is not None and getattr(inner, "rows", None) is not None:
        return len(inner.rows)
    count = getattr(result, "count", None)
    if isinstance(count, int):
        return count
    return 0


class SnapshotChanged(RuntimeError):
    """Concurrent DDL moved the catalog under a snapshot read."""

    def __init__(self, expected: int, current: int):
        super().__init__(
            f"catalog version moved from {expected} to {current} during a "
            f"snapshot read; re-issue the statement outside the snapshot "
            f"or take a new one"
        )
        self.expected = expected
        self.current = current
        # every optimistic-read conflict is constructed here, whichever
        # session method detects it — one counter covers them all
        obs_counter(
            "snapshot_conflicts_total",
            "Optimistic snapshot reads aborted by concurrent catalog movement",
        ).inc()


class Session:
    """One client's statements, bindings, and snapshot on a shared UDatabase."""

    def __init__(
        self,
        udb: UDatabase,
        server: Optional[Any] = None,
        mode: str = "columns",
        use_indexes: bool = True,
        parallel: int = 0,
    ):
        self.udb = udb
        #: The owning :class:`~repro.server.server.QueryServer`, or None
        #: for a standalone session (statements then execute inline on the
        #: calling thread, without admission control or coalescing).
        self.server = server
        self.mode = mode
        self.use_indexes = use_indexes
        self.parallel = parallel
        self._named: Dict[str, PreparedQuery] = {}
        self._by_text: Dict[str, PreparedQuery] = {}
        #: Serializes this session's statements (a session models one
        #: connection; its requests are a sequence, not a pool).
        self._lock = threading.RLock()
        self._snapshot_version: Optional[int] = None
        self._snapshot_identity: Optional[dict] = None
        #: The open per-connection :class:`Transaction`, if any: while set,
        #: the session's DML stages against the transaction's overlay and
        #: publishes in one swap at COMMIT (see :mod:`repro.core.txn`).
        self._txn: Optional[Transaction] = None
        self.statements_run = 0
        #: Key into the obs per-session resource accounting (see
        #: :mod:`repro.obs.accounting`; surfaced by ``server.stats()``).
        self.accounting_id = register_session()

    # ------------------------------------------------------------------
    # statement namespace
    # ------------------------------------------------------------------
    def _parse(self, sql: str) -> PreparedQuery:
        """Parse SQL into a session-owned statement (own ``$n`` store).

        Queries become :class:`PreparedQuery`, DML becomes
        :class:`PreparedDML` — both session-owned, so concurrent sessions
        binding ``$n`` slots of identical texts never share state.
        """
        from ..core.dml import Delete, Insert, Update
        from ..core.txn import Begin, Commit, Rollback
        from ..sql.parser import CreateIndex, DropIndex, Vacuum, parse

        statement = parse(sql)
        if isinstance(statement, (CreateIndex, DropIndex)):
            raise ValueError("cannot prepare DDL; use Session.execute_ddl")
        if isinstance(statement, (Vacuum, Begin, Commit, Rollback)):
            raise ValueError(
                "cannot prepare VACUUM or transaction control; "
                "pass it to Session.execute"
            )
        if isinstance(statement, (Insert, Update, Delete)):
            return PreparedDML(statement, self.udb, sql=sql)
        return PreparedQuery(statement, self.udb, sql=sql)

    def prepare(self, name: str, sql: str) -> PreparedQuery:
        """Register a named prepared statement in this session's namespace.

        Re-preparing a name replaces it (the PostgreSQL ``PREPARE``
        convention is an error; replacement is friendlier for a serving
        loop and costs nothing).  The statement belongs to this session:
        its ``$n`` bindings are invisible to every other session.
        """
        prepared = self._parse(sql)
        with self._lock:
            self._named[name] = prepared
        return prepared

    def deallocate(self, name: str) -> None:
        """Drop a named prepared statement (KeyError when absent)."""
        with self._lock:
            del self._named[name]

    def statement(self, name: str) -> PreparedQuery:
        """Look up a named prepared statement."""
        with self._lock:
            try:
                return self._named[name]
            except KeyError:
                raise KeyError(
                    f"no prepared statement {name!r} in this session; "
                    f"have {sorted(self._named)}"
                ) from None

    def _by_text_statement(self, sql: str) -> PreparedQuery:
        with self._lock:
            with obs_span("parse") as sp:
                cached = self._by_text.get(sql)
                sp.set(cached=cached is not None)
                if cached is None:
                    cached = self._parse(sql)
                    if len(self._by_text) >= _SESSION_STATEMENT_LIMIT:
                        self._by_text.clear()
                    self._by_text[sql] = cached
                return cached

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "_Snapshot":
        """Optimistic repeatable reads: ``with session.snapshot(): ...``.

        Statements inside the block verify the catalog version they
        started under is still current; concurrent DDL raises
        :class:`SnapshotChanged` instead of silently mixing pre- and
        post-DDL answers across the block's statements.
        """
        return _Snapshot(self)

    def _check_snapshot(self) -> None:
        expected = self._snapshot_version
        if expected is not None:
            current = self.udb.catalog_version
            if current != expected:
                raise SnapshotChanged(expected, current)

    def _catalog_identity(self):
        """The relation-object identity map snapshot validation compares.

        Swaps (DML publishes, compaction) replace relation objects;
        in-place access-path work (lazy index builds, statistics) does
        not — so the identity map moves exactly when answers may move.
        See :meth:`~repro.core.udatabase.UDatabase.catalog_identity`.
        """
        return self.udb.catalog_identity()

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin(self) -> TxnResult:
        """Open a multi-statement transaction on this session (``BEGIN``).

        Refused inside a snapshot block (a write would break the
        snapshot's guarantee, exactly like plain DML) and when a
        transaction is already open (they do not nest).
        """
        with self._lock:
            if self._snapshot_version is not None:
                raise SnapshotChanged(
                    self._snapshot_version, self.udb.catalog_version
                )
            if self._txn is not None and self._txn.status == "open":
                raise ValueError(
                    "a transaction is already open on this session; "
                    "COMMIT or ROLLBACK it first"
                )
            self._txn = Transaction(self.udb)
            return TxnResult("open")

    def commit(self) -> TxnResult:
        """Publish the open transaction atomically (``COMMIT``).

        Raises :class:`~repro.core.txn.TransactionConflict` — with
        nothing published and the transaction rolled back — when a
        concurrent writer replaced a touched relation's partitions.
        """
        with self._lock:
            txn = self._require_txn("COMMIT")
            self._txn = None
            return txn.commit()

    def rollback(self) -> TxnResult:
        """Discard the open transaction's staged statements (``ROLLBACK``)."""
        with self._lock:
            txn = self._require_txn("ROLLBACK")
            self._txn = None
            return txn.rollback()

    def _require_txn(self, verb: str) -> Transaction:
        txn = self._txn
        if txn is None or txn.status != "open":
            raise ValueError(f"{verb} without an open transaction")
        return txn

    def _apply_vacuum(self, table: Optional[str]):
        """Run ``VACUUM [table]`` (caller holds the session lock).

        Refused inside snapshots (compaction moves the catalog version)
        and transactions (its swap would conflict with the transaction's
        own publish).  Server-bound sessions route through the server so
        compaction admits under the ``vacuum`` cost class.
        """
        if self._snapshot_version is not None:
            raise SnapshotChanged(self._snapshot_version, self.udb.catalog_version)
        if self._txn is not None and self._txn.status == "open":
            raise ValueError(
                "VACUUM cannot run inside a transaction (its swap would "
                "conflict with the transaction's own publish)"
            )
        if self.server is not None:
            return self.server.vacuum(table)
        return self.udb.compact(table)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Sequence[Any] = ()):
        """Run a SQL statement (queries, DML, index DDL), returning its result.

        Queries and DML are prepared transparently (cached by text in
        this session) and routed through the server's admission + executor
        layers when the session is server-bound.  DDL executes inline;
        DDL and DML are rejected inside a snapshot block (the session's
        own write would break the snapshot's guarantee).

        ``VACUUM [table]`` compacts segment stacks (through the server's
        ``vacuum`` admission class when server-bound), and
        ``BEGIN``/``COMMIT``/``ROLLBACK`` manage this session's
        multi-statement transaction — while one is open, DML stages
        privately and publishes atomically at COMMIT.
        """
        from ..sql.parser import CreateIndex, DropIndex, parse

        from ..core.txn import Begin, Commit, Rollback
        from ..sql.parser import Vacuum

        with self._lock:
            self._check_snapshot()
            with request_trace(sql=sql):
                head = sql.lstrip().lower()
                word = head.split(None, 1)[0] if head else ""
                if word in ("create", "drop", "vacuum", "begin", "commit", "rollback"):
                    statement = parse(sql)
                    trace = current_trace()
                    if isinstance(statement, (CreateIndex, DropIndex)):
                        if trace is not None:
                            trace.root.set(cost_class="ddl")
                        return self._apply_ddl(statement)
                    if isinstance(statement, Vacuum):
                        if trace is not None:
                            trace.root.set(cost_class="vacuum")
                        return self._apply_vacuum(statement.table)
                    if isinstance(statement, (Begin, Commit, Rollback)):
                        if trace is not None:
                            trace.root.set(cost_class="txn")
                        if isinstance(statement, Begin):
                            return self.begin()
                        if isinstance(statement, Commit):
                            return self.commit()
                        return self.rollback()
                prepared = self._by_text_statement(sql)
                return self._run(prepared, tuple(params))

    def execute_prepared(self, name: str, *params: Any):
        """Run a named prepared statement with the given bindings."""
        with self._lock:
            self._check_snapshot()
            prepared = self.statement(name)
            with request_trace(sql=prepared.sql or ""):
                with obs_span("parse", cached=True):
                    pass  # parsed at PREPARE time; keep the span present
                return self._run(prepared, params)

    def run(self, prepared: PreparedQuery, *params: Any):
        """Run a session-owned :class:`PreparedQuery` (from :meth:`prepare`)."""
        with self._lock:
            self._check_snapshot()
            with request_trace(sql=prepared.sql or ""):
                return self._run(prepared, params)

    def execute_ddl(self, sql: str):
        """Apply index DDL to the shared database (never inside a snapshot)."""
        from ..sql.parser import CreateIndex, DropIndex, parse

        statement = parse(sql)
        if not isinstance(statement, (CreateIndex, DropIndex)):
            raise ValueError("execute_ddl takes CREATE INDEX / DROP INDEX only")
        with self._lock:
            return self._apply_ddl(statement)

    def _apply_ddl(self, statement):
        """Apply a parsed DDL statement (caller holds the session lock).

        Mirrors :func:`repro.sql.execute_sql`'s DDL branch — no replace on
        CREATE, so a name collision with a different definition errors
        instead of destroying an existing access path.
        """
        from ..sql.parser import CreateIndex

        if self._snapshot_version is not None:
            raise SnapshotChanged(self._snapshot_version, self.udb.catalog_version)
        if self._txn is not None and self._txn.status == "open":
            raise ValueError(
                "DDL cannot run inside a transaction; COMMIT or ROLLBACK first"
            )
        db = self.udb.to_database()
        if isinstance(statement, CreateIndex):
            return db.create_index(
                statement.name,
                statement.table,
                list(statement.columns),
                kind=statement.kind,
            )
        db.drop_index(statement.name)
        return None

    def _run(self, prepared: PreparedQuery, params: Tuple[Any, ...]):
        if isinstance(prepared, PreparedDML) and self._snapshot_version is not None:
            # a session's own write would invalidate the snapshot it is
            # reading under — same contract as DDL
            raise SnapshotChanged(self._snapshot_version, self.udb.catalog_version)
        self.statements_run += 1
        if isinstance(prepared, PreparedDML) and self._txn is not None:
            if self._txn.status == "open":
                # stage against the transaction's private overlay, inline
                # (nothing publishes until COMMIT, so there is no shared
                # mutation for the server's executor to serialize)
                return self._txn.run(prepared, params)
        started = time.perf_counter()
        if self.server is not None:
            result = self.server.execute(prepared, params, session=self)
        else:
            result = prepared.run(
                *params,
                mode=self.mode,
                use_indexes=self.use_indexes,
                parallel=self.parallel,
            )
        trace = current_trace()
        record_statement(
            self.accounting_id,
            trace.root.attrs.get("cost_class") if trace is not None else None,
            rows=_result_rows(result),
            seconds=time.perf_counter() - started,
        )
        # optimistic validation closes on both sides: the version pre-check
        # alone leaves a window where a swap lands after it but before the
        # plan resolves its relations, silently answering from the new
        # catalog inside a "repeatable" block.  The post-check compares
        # relation *identities* — a read's own lazy index builds bump the
        # version without moving answers, and must not conflict the
        # snapshot that triggered them.
        if (
            self._snapshot_identity is not None
            and self._catalog_identity() != self._snapshot_identity
        ):
            raise SnapshotChanged(
                self._snapshot_version, self.udb.catalog_version
            )
        return result

    def __repr__(self) -> str:
        bound = "server-bound" if self.server is not None else "standalone"
        return (
            f"Session({bound}, named={sorted(self._named)}, "
            f"statements_run={self.statements_run})"
        )


class _Snapshot:
    """Context manager recording/clearing a session's snapshot version."""

    def __init__(self, session: Session):
        self._session = session

    def __enter__(self) -> Session:
        session = self._session
        with session._lock:
            if session._snapshot_version is not None:
                raise RuntimeError("session snapshots do not nest")
            session._snapshot_version = session.udb.catalog_version
            session._snapshot_identity = session._catalog_identity()
        return session

    def __exit__(self, *exc: Any) -> None:
        with self._session._lock:
            self._session._snapshot_version = None
            self._session._snapshot_identity = None
