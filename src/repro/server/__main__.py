"""``python -m repro.server`` — serve an uncertain TPC-H instance over TCP.

Generates a small uncertain TPC-H database (``repro.ugen``), force-builds
its auto-indexes, and serves the newline-JSON line protocol (see
:mod:`repro.server.server`) until interrupted.  A quick smoke from a
second shell::

    printf '%s\n' '{"op":"query","sql":"possible (select extendedprice from lineitem where quantity < 24)"}' \
        | nc 127.0.0.1 5433 | head -c 300
"""

from __future__ import annotations

import argparse
import time


def main() -> None:
    parser = argparse.ArgumentParser(description="repro query server (TCP line protocol)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433)
    parser.add_argument("--scale", type=float, default=0.001, help="TPC-H scale factor")
    parser.add_argument("--uncertainty", type=float, default=0.01, help="uncertainty ratio x")
    parser.add_argument("--correlation", type=float, default=0.25, help="correlation ratio z")
    parser.add_argument("--workers", type=int, default=8, help="executor worker threads")
    parser.add_argument("--parallel", type=int, default=0, help="partition-parallel scan fan-out (0 = serial)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    from repro.server import QueryServer
    from repro.ugen import generate_uncertain

    print(f"generating uncertain TPC-H (scale={args.scale}, x={args.uncertainty}, z={args.correlation}) ...")
    bundle = generate_uncertain(
        scale=args.scale, x=args.uncertainty, z=args.correlation, seed=args.seed
    )
    bundle.udb.build_indexes()
    server = QueryServer(bundle.udb, workers=args.workers, parallel=args.parallel)
    handle = server.serve_tcp(args.host, args.port)
    host, port = handle.address
    print(f"serving on {host}:{port} (newline-JSON protocol; Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        handle.close()
        server.close()


if __name__ == "__main__":
    main()
