"""World-set decompositions (WSDs) — the MayBMS [4, 6] baseline.

A WSD represents a world-set as a product of *components*
``C_1 x C_2 x ... x C_n``: each component is a small relation whose columns
are tuple fields (``t_i.A``) and whose rows are the component's *local
worlds*.  One world of the database is obtained by choosing one row from
every component; a field holding the bottom marker ``BOTTOM`` in the chosen
row is absent in that world (the tuple is incomplete and dropped).

Section 5 of the paper identifies WSDs with *normalized* U-relational
databases: each component corresponds to a variable, each local world to a
domain value.  The conversions live in :mod:`repro.wsd.convert`; this
module is the standalone representation with its own semantics, used for
the succinctness and query-evaluation comparisons (Figures 5-7).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..relational.relation import Relation
from ..relational.schema import Schema

__all__ = ["BOTTOM", "Field", "Component", "WSD"]


class _Bottom:
    """The ⊥ marker: field absent in this local world."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()


class Field:
    """A tuple-field coordinate: (relation, tuple id, attribute)."""

    __slots__ = ("relation", "tid", "attribute")

    def __init__(self, relation: str, tid: Any, attribute: str):
        self.relation = relation
        self.tid = tid
        self.attribute = attribute

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Field)
            and self.relation == other.relation
            and self.tid == other.tid
            and self.attribute == other.attribute
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.tid, self.attribute))

    def __repr__(self) -> str:
        return f"{self.relation}[{self.tid}].{self.attribute}"


class Component:
    """One WSD component: fields (columns) x local worlds (rows)."""

    def __init__(self, fields: Sequence[Field], local_worlds: Iterable[Sequence[Any]]):
        self.fields: Tuple[Field, ...] = tuple(fields)
        self.local_worlds: List[Tuple[Any, ...]] = []
        for world in local_worlds:
            world_t = tuple(world)
            if len(world_t) != len(self.fields):
                raise ValueError(
                    f"local world arity {len(world_t)} does not match "
                    f"{len(self.fields)} fields"
                )
            self.local_worlds.append(world_t)
        if not self.local_worlds:
            raise ValueError("a component must have at least one local world")

    def __len__(self) -> int:
        return len(self.local_worlds)

    def size_cells(self) -> int:
        """Number of cells — the footprint measure used by Figure 6/7."""
        return len(self.fields) * len(self.local_worlds)

    def __repr__(self) -> str:
        return f"Component({list(self.fields)}, {len(self.local_worlds)} local worlds)"


class WSD:
    """A world-set decomposition: a product of components plus schemas."""

    def __init__(self, schemas: Mapping[str, Sequence[str]]):
        self.schemas: Dict[str, Tuple[str, ...]] = {
            name: tuple(attrs) for name, attrs in schemas.items()
        }
        self.components: List[Component] = []

    def add_component(self, component: Component) -> None:
        """Append a component; its fields must belong to known schemas."""
        for field in component.fields:
            if field.relation not in self.schemas:
                raise KeyError(f"unknown relation {field.relation!r}")
            if field.attribute not in self.schemas[field.relation]:
                raise KeyError(
                    f"unknown attribute {field.attribute!r} of {field.relation!r}"
                )
        self.components.append(component)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def world_count(self) -> int:
        count = 1
        for component in self.components:
            count *= len(component)
        return count

    def max_local_worlds(self) -> int:
        """Figure 9's "max. number of local worlds in a component"."""
        return max((len(c) for c in self.components), default=1)

    def size_cells(self) -> int:
        """Total representation footprint in cells."""
        return sum(c.size_cells() for c in self.components)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def choices(self) -> Iterator[Tuple[int, ...]]:
        """All world choices: one local-world index per component."""
        ranges = [range(len(c)) for c in self.components]
        return itertools.product(*ranges)

    def instantiate(self, choice: Sequence[int]) -> Dict[str, Relation]:
        """The database instance selected by one choice vector."""
        fields: Dict[Tuple[str, Any], Dict[str, Any]] = {}
        for component, index in zip(self.components, choice):
            world = component.local_worlds[index]
            for field, value in zip(component.fields, world):
                key = (field.relation, field.tid)
                row = fields.setdefault(key, {})
                if value is BOTTOM:
                    continue
                row[field.attribute] = value
        out: Dict[str, Relation] = {}
        for name, attrs in self.schemas.items():
            rows = []
            for (relation, _tid), row in fields.items():
                if relation != name:
                    continue
                if set(attrs) <= set(row):  # incomplete tuples are dropped
                    rows.append(tuple(row[a] for a in attrs))
            out[name] = Relation(Schema(attrs), rows).distinct()
        return out

    def worlds(self) -> Iterator[Dict[str, Relation]]:
        """Enumerate all database instances (exponential — tests only)."""
        for choice in self.choices():
            yield self.instantiate(choice)

    def __repr__(self) -> str:
        return (
            f"WSD({len(self.components)} components, "
            f"{self.world_count()} worlds, {self.size_cells()} cells)"
        )
