"""``repro.wsd`` — world-set decompositions (the MayBMS WSD baseline).

WSDs represent a world-set as a product of components; Section 5 of the
paper identifies them with *normalized* U-relational databases and proves
U-relations exponentially more succinct (Theorem 5.2).  This package
provides the representation, its possible-worlds semantics, conversions to
and from U-relational databases, and (exponential) query evaluation — the
comparison substrate for Figures 5-7.
"""

from .convert import udatabase_to_wsd, wsd_to_udatabase
from .query import evaluate_certain, evaluate_poss, expansion_size, relevant_components
from .wsd import BOTTOM, Component, Field, WSD

__all__ = [
    "WSD",
    "Component",
    "Field",
    "BOTTOM",
    "udatabase_to_wsd",
    "wsd_to_udatabase",
    "evaluate_poss",
    "evaluate_certain",
    "expansion_size",
    "relevant_components",
]
