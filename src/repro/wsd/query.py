"""Query evaluation on WSDs.

Section 5: "for WSDs all operators are translated to sequences of
relational queries and in the case of projection and join even to fixpoint
programs" — and the data complexity of positive relational algebra is
exponential.  We implement the straightforward (and, per the paper,
unavoidable in the worst case) evaluation: expand the product of the
components *relevant to the query*, evaluate per combined local world, and
union the answers.  The expansion is exactly the ``c_1 x ... x c_n``
blow-up of Example 5.3 — the point of the Figure 6/7 comparison.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..core.query import Certain, Poss, UQuery, evaluate_in_world, query_relations
from ..relational.relation import Relation
from ..relational.schema import Schema
from .wsd import WSD, Component

__all__ = ["evaluate_poss", "evaluate_certain", "relevant_components", "expansion_size"]


def relevant_components(wsd: WSD, query: UQuery) -> List[int]:
    """Indices of components holding fields of relations the query touches."""
    names: Set[str] = {rel.name for rel in query_relations(_strip(query))}
    out = []
    for index, component in enumerate(wsd.components):
        if any(field.relation in names for field in component.fields):
            out.append(index)
    return out


def expansion_size(wsd: WSD, query: UQuery) -> int:
    """Number of combined local worlds the evaluation must expand."""
    size = 1
    for index in relevant_components(wsd, query):
        size *= len(wsd.components[index])
    return size


def evaluate_poss(wsd: WSD, query: UQuery) -> Relation:
    """Possible answers: union of the per-(relevant-)world answers."""
    inner = _strip(query)
    rows: Set[Tuple] = set()
    schema: Schema = None  # type: ignore[assignment]
    for instances in _relevant_worlds(wsd, inner):
        answer = evaluate_in_world(inner, instances)
        schema = answer.schema
        rows.update(answer.rows)
    if schema is None:  # no components at all: evaluate the empty instance
        instances = {name: Relation(Schema(attrs), []) for name, attrs in wsd.schemas.items()}
        return evaluate_in_world(inner, instances)
    return Relation(schema, sorted(rows, key=lambda r: tuple(map(repr, r))))


def evaluate_certain(wsd: WSD, query: UQuery) -> Relation:
    """Certain answers: intersection of the per-world answers."""
    inner = _strip(query)
    rows: Set[Tuple] = None  # type: ignore[assignment]
    schema: Schema = None  # type: ignore[assignment]
    for instances in _relevant_worlds(wsd, inner):
        answer = evaluate_in_world(inner, instances)
        schema = answer.schema
        if rows is None:
            rows = set(answer.rows)
        else:
            rows &= set(answer.rows)
    if schema is None:
        instances = {name: Relation(Schema(attrs), []) for name, attrs in wsd.schemas.items()}
        return evaluate_in_world(inner, instances)
    return Relation(schema, sorted(rows, key=lambda r: tuple(map(repr, r))))


def _strip(query: UQuery) -> UQuery:
    while isinstance(query, (Poss, Certain)):
        query = query.children[0]
    return query


def _relevant_worlds(wsd: WSD, query: UQuery) -> Iterator[Dict[str, Relation]]:
    relevant = relevant_components(wsd, query)
    relevant_set = set(relevant)
    fixed_choice = [0] * len(wsd.components)
    ranges = [range(len(wsd.components[i])) for i in relevant]
    for combo in itertools.product(*ranges):
        choice = list(fixed_choice)
        for index, local in zip(relevant, combo):
            choice[index] = local
        yield wsd.instantiate(choice)
