"""Conversions between U-relational databases and WSDs (Section 5).

"WSDs are essentially normalized U-relational databases where each variable
c_i of a U-relation corresponds to a WSD component relation C_i and each
domain value l_i of c_i corresponds to a tuple of C_i."

* :func:`udatabase_to_wsd` — normalize (Algorithm 1) if necessary, then map
  each variable to a component: the component's fields are all tuple fields
  depending on that variable, its local worlds are the variable's domain
  values, with ``BOTTOM`` where a field is undefined for a value (exactly
  Figure 5(c) / Figure 7(a) of the paper).  This is where the exponential
  blow-up of Theorem 5.2 materializes.
* :func:`wsd_to_udatabase` — the reverse linear embedding: one variable per
  component, one U-relation tuple per defined field per local world.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ..core.descriptor import TOP_VARIABLE, Descriptor
from ..core.normalization import is_normalized, normalize_udatabase
from ..core.udatabase import UDatabase
from ..core.urelation import URelation, tid_column
from ..core.worldtable import WorldTable
from .wsd import BOTTOM, Component, Field, WSD

__all__ = ["udatabase_to_wsd", "wsd_to_udatabase"]


def udatabase_to_wsd(udb: UDatabase) -> WSD:
    """Convert a U-relational database to an equivalent WSD.

    Normalizes first when descriptors are larger than one — this step can
    blow up exponentially (Theorem 5.2), which the succinctness benchmarks
    measure directly.
    """
    all_parts = [p for name in udb.relation_names() for p in udb.partitions(name)]
    if not is_normalized(all_parts):
        udb = normalize_udatabase(udb)

    schemas = {
        name: udb.logical_schema(name).attributes for name in udb.relation_names()
    }
    wsd = WSD(schemas)

    # group fields and (variable, value) -> field value maps per variable
    fields_of: Dict[str, List[Field]] = {}
    values_of: Dict[Tuple[str, Any], Dict[Field, Any]] = {}
    certain_fields: List[Tuple[Field, Any]] = []
    for name in udb.relation_names():
        for part in udb.partitions(name):
            for descriptor, tids, values in part:
                (tid,) = tids
                if descriptor.empty:
                    for attr, value in zip(part.value_names, values):
                        certain_fields.append((Field(name, tid, attr), value))
                    continue
                ((var, val),) = descriptor.items()
                for attr, value in zip(part.value_names, values):
                    field = Field(name, tid, attr)
                    bucket = fields_of.setdefault(var, [])
                    if field not in bucket:
                        bucket.append(field)
                    values_of.setdefault((var, val), {})[field] = value

    for var in sorted(fields_of):
        fields = fields_of[var]
        local_worlds = []
        for val in udb.world_table.domain(var):
            assignment = values_of.get((var, val), {})
            local_worlds.append(
                tuple(assignment.get(field, BOTTOM) for field in fields)
            )
        wsd.add_component(Component(fields, local_worlds))

    if certain_fields:
        fields = [f for f, _ in certain_fields]
        wsd.add_component(Component(fields, [tuple(v for _, v in certain_fields)]))
    return wsd


def wsd_to_udatabase(wsd: WSD) -> UDatabase:
    """Linear embedding of a WSD as a (normalized) U-relational database.

    Component ``i`` becomes variable ``k<i>`` with one domain value per
    local world; every defined cell becomes one U-relation tuple.  Fields of
    the same relation are grouped per attribute into vertical partitions.
    """
    world = WorldTable()
    per_attr: Dict[Tuple[str, str], List[Tuple[Descriptor, Any, Tuple[Any, ...]]]] = {}
    for index, component in enumerate(wsd.components):
        var = f"k{index}"
        singleton = len(component) == 1
        if not singleton:
            world.add_variable(var, list(range(len(component))))
        for world_index, local in enumerate(component.local_worlds):
            descriptor = Descriptor() if singleton else Descriptor({var: world_index})
            for field, value in zip(component.fields, local):
                if value is BOTTOM:
                    continue
                per_attr.setdefault((field.relation, field.attribute), []).append(
                    (descriptor, field.tid, (value,))
                )

    udb = UDatabase(world)
    for name, attrs in wsd.schemas.items():
        partitions = []
        for attr in attrs:
            triples = per_attr.get((name, attr), [])
            partitions.append(
                URelation.build(triples, tid_column(name), [attr], d_width=1)
            )
        udb.add_relation(name, attrs, partitions)
    return udb
