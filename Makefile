# Developer entry points.
#
#   make test        - the tier-1 test suite (what CI must keep green)
#   make bench-smoke - the Figure 12 query-time benchmark at a tiny scale,
#                      including the plan-cache warm-vs-cold and
#                      rows-vs-blocks executor head-to-heads plus the
#                      observability-overhead gate (obs on vs REPRO_OBS=off
#                      must stay within 5% on Q1/Q2); one command to spot
#                      a perf regression
#   make bench-serve - serving throughput: requests/sec on the Figure 12
#                      queries over the TCP protocol at 1/4/8 client
#                      threads (gates on >= 2x at 4 clients; appends to
#                      benchmarks/results/BENCH_serve.json)
#   make bench-ingest - read-write serving: mixed insert/point-lookup mix
#                      at 1/4/8 clients (verifies every insert landed and
#                      that the latest BENCH_serve read-only numbers still
#                      meet their bar; appends to
#                      benchmarks/results/BENCH_ingest.json)
#   make bench-conf  - confidence computation: vectorized exact kernel vs
#                      the old tuple-at-a-time path (>= 3x gate), approx
#                      within epsilon on >= 95% of seeds, and a heavy
#                      lineage answered under the admission deadline
#                      (appends to benchmarks/results/BENCH_conf.json)
#   make bench-obs   - the workload-intelligence overhead gate: the full
#                      obs pipeline (trace + metrics + fingerprint history
#                      + accounting) vs REPRO_OBS=off on Figure 12 Q1/Q2,
#                      <= 5% (appends to benchmarks/results/BENCH_obs.json)
#   make coverage    - the tier-1 suite under coverage with the CI ratchet
#                      (needs pytest-cov: pip install -r requirements-dev.txt)
#   make bench       - the full benchmark suite (slow)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

#: CI coverage ratchet (percent of src/repro lines the suite must cover).
#: Measured ~91% today; raise as coverage grows, never lower.
COVERAGE_FLOOR ?= 85

.PHONY: test coverage bench-smoke bench-serve bench-ingest bench-conf bench-obs bench

test:
	$(PYTHON) -m pytest -x -q

coverage:
	$(PYTHON) -m pytest -x -q --cov=src/repro --cov-report=term-missing:skip-covered --cov-fail-under=$(COVERAGE_FLOOR)

bench-smoke:
	REPRO_BENCH_SCALE=0.0005 $(PYTHON) -m pytest benchmarks/bench_fig12_query_times.py -q --benchmark-disable-gc

bench-serve:
	REPRO_BENCH_SCALE=0.001 $(PYTHON) -m pytest benchmarks/bench_serve.py -q

bench-ingest:
	$(PYTHON) -m pytest benchmarks/bench_ingest.py -q

bench-conf:
	$(PYTHON) -m pytest benchmarks/bench_conf.py -q

bench-obs:
	$(PYTHON) -m pytest benchmarks/bench_obs.py -q --benchmark-disable-gc

# bench_*.py does not match pytest's default test-file pattern, so the
# files must be passed explicitly (directory collection finds nothing)
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q
