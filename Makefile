# Developer entry points.
#
#   make test        - the tier-1 test suite (what CI must keep green)
#   make bench-smoke - the Figure 12 query-time benchmark at a tiny scale,
#                      including the rows-vs-blocks executor head-to-head;
#                      one command to spot a perf regression
#   make bench       - the full benchmark suite (slow)

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke bench

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	REPRO_BENCH_SCALE=0.0005 $(PYTHON) -m pytest benchmarks/bench_fig12_query_times.py -q --benchmark-disable-gc

# bench_*.py does not match pytest's default test-file pattern, so the
# files must be passed explicitly (directory collection finds nothing)
bench:
	$(PYTHON) -m pytest benchmarks/bench_*.py -q
