"""Cross-representation agreement: the same world-set queried three ways.

For a shared world-set, possible and certain answers must agree between
(1) U-relations via the Figure 4 translation, (2) WSDs via component
expansion, and (3) ULDBs via lineage-aware evaluation — the Section 5
claim that the formalisms are interchangeable in expressiveness, differing
only in cost.
"""

import pytest

from repro.core import Poss, Rel, UProject, USelect, execute_query
from repro.relational import col, lit
from repro.uldb import possible_tuples, select as uldb_select, udatabase_to_uldb
from repro.wsd import evaluate_certain, evaluate_poss, udatabase_to_wsd
from tests.conftest import brute_force_certain, brute_force_poss


@pytest.fixture(scope="module")
def representations():
    from tests.conftest import build_vehicles_udb

    udb = build_vehicles_udb()
    return udb, udatabase_to_wsd(udb), udatabase_to_uldb(udb)


QUERIES = [
    ("all ids", UProject(Rel("r"), ["id"])),
    (
        "enemy ids",
        UProject(USelect(Rel("r"), col("faction").eq(lit("Enemy"))), ["id"]),
    ),
    (
        "tank types",
        UProject(USelect(Rel("r"), col("type").eq(lit("Tank"))), ["id", "type"]),
    ),
]


@pytest.mark.parametrize("label,query", QUERIES, ids=[l for l, _ in QUERIES])
def test_possible_answers_agree(representations, label, query):
    udb, wsd, _uldb = representations
    oracle = brute_force_poss(query, udb)
    assert set(execute_query(Poss(query), udb).rows) == oracle
    assert set(evaluate_poss(wsd, query).rows) == oracle


@pytest.mark.parametrize("label,query", QUERIES, ids=[l for l, _ in QUERIES])
def test_certain_answers_agree(representations, label, query):
    from repro.core import Certain

    udb, wsd, _uldb = representations
    oracle = brute_force_certain(query, udb)
    assert set(execute_query(Certain(query), udb).rows) == oracle
    assert set(evaluate_certain(wsd, query).rows) == oracle


def test_uldb_selection_agrees(representations):
    """ULDB select + possible_tuples matches the U-relational poss."""
    udb, _wsd, uldb = representations
    query = USelect(Rel("r"), col("faction").eq(lit("Enemy")))
    oracle = brute_force_poss(query, udb)
    selected = uldb_select(uldb, uldb.get("r"), col("faction").eq(lit("Enemy")))
    uldb_answer = set(possible_tuples(uldb, selected, minimized=True).rows)
    assert uldb_answer == oracle


def test_world_counts_agree():
    # fresh conversions: query evaluation registers result relations in a
    # ULDB (Trio-style), which would otherwise enter the world enumeration
    from tests.conftest import build_vehicles_udb

    udb = build_vehicles_udb()
    assert udb.world_count() == 8
    assert udatabase_to_wsd(udb).world_count() == 8
    assert len(list(udatabase_to_uldb(udb).worlds())) == 8
