"""Smoke tests: every shipped example must run to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = [sys.executable, str(script)]
    if script.name == "uncertain_tpch.py":
        args += ["0.0005", "0.02", "0.25"]
    if script.name == "representation_comparison.py":
        args += ["4"]
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=600
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must produce output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3, "the deliverable requires at least three examples"
