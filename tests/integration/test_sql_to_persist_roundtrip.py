"""Full-lifecycle integration: generate -> save -> load -> SQL -> aggregate.

The downstream-user workflow, end to end: an uncertain database is
generated, persisted to disk, reloaded in a "new session", queried through
SQL, and summarized with uncertain aggregates — touching every public
surface of the library in one pipeline.
"""

import pytest

from repro import execute_sql
from repro.core import load_udatabase, save_udatabase
from repro.core.aggregates import expected_count
from repro.ugen import generate_uncertain


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    bundle = generate_uncertain(
        scale=0.001, x=0.05, z=0.25, seed=77, tables=["customer", "orders"]
    )
    directory = tmp_path_factory.mktemp("lifecycle") / "db"
    save_udatabase(bundle.udb, directory)
    return bundle, directory


def test_full_lifecycle(saved):
    bundle, directory = saved
    reloaded = load_udatabase(directory)

    sql = """possible (select o.orderkey from customer c, orders o
                       where c.mktsegment = 'BUILDING'
                         and c.custkey = o.custkey)"""
    before = set(execute_sql(sql, bundle.udb).rows)
    after = set(execute_sql(sql, reloaded).rows)
    assert before == after
    assert before  # non-trivial answer at this scale


def test_aggregates_survive_reload(saved):
    bundle, directory = saved
    reloaded = load_udatabase(directory)

    inner = """select o.orderkey from customer c, orders o
               where c.mktsegment = 'BUILDING' and c.custkey = o.custkey"""
    from repro.sql import parse

    from repro.core import execute_query

    result_before = execute_query(parse(inner), bundle.udb)
    result_after = execute_query(parse(inner), reloaded)
    e_before = expected_count(result_before, bundle.udb.world_table)
    e_after = expected_count(result_after, reloaded.world_table)
    assert e_before == pytest.approx(e_after)


def test_certain_subset_possible_after_reload(saved):
    _bundle, directory = saved
    reloaded = load_udatabase(directory)
    possible = set(
        execute_sql(
            "possible (select c.mktsegment from customer c)", reloaded
        ).rows
    )
    certain = set(
        execute_sql(
            "certain (select c.mktsegment from customer c)", reloaded
        ).rows
    )
    assert certain <= possible
    assert len(possible) == 5  # all five TPC-H segments occur somewhere
