"""Tests for the optimizer: rewrites preserve results; shapes improve."""

import pytest

from repro.relational.algebra import (
    Distinct,
    Join,
    Plan,
    Product,
    Project,
    Scan,
    Select,
    Union,
)
from repro.relational.expressions import col, lit
from repro.relational.optimizer import (
    estimate_rows,
    optimize,
    order_joins,
    prune_columns,
    push_selections,
)
from repro.relational.planner import plan_physical
from repro.relational.physical import execute
from repro.relational.relation import Relation


def run_plan(plan: Plan) -> Relation:
    return execute(plan_physical(plan))


@pytest.fixture
def db():
    r = Relation(["r.k", "r.v"], [(i, i % 5) for i in range(50)])
    s = Relation(["s.k", "s.w"], [(i, i % 3) for i in range(40)])
    t = Relation(["t.w", "t.z"], [(i % 3, i) for i in range(30)])
    return (
        Scan(r, "r"),
        Scan(s, "s"),
        Scan(t, "t"),
    )


def assert_equivalent(plan: Plan) -> Plan:
    """optimize(plan) must produce the same bag of rows as plan."""
    baseline = run_plan(plan)
    optimized = optimize(plan)
    result = run_plan(optimized)
    assert sorted(map(repr, result.rows)) == sorted(map(repr, baseline.rows))
    assert result.schema.names == baseline.schema.names
    return optimized


class TestPushdown:
    def test_selection_pushed_below_project(self, db):
        r, _, _ = db
        plan = Select(Project(r, ["r.v"]), col("r.v") > lit(2))
        optimized = assert_equivalent(plan)
        assert isinstance(optimized, Project)

    def test_selection_pushed_into_join_side(self, db):
        r, s, _ = db
        plan = Select(
            Join(r, s, col("r.k").eq(col("s.k"))), col("r.v").eq(lit(0))
        )
        optimized = assert_equivalent(plan)
        # after pushdown + pruning the filter must sit below the join
        def join_has_filter_child(node: Plan) -> bool:
            if isinstance(node, Join):
                return any(_contains_select(c) for c in node.children)
            return any(join_has_filter_child(c) for c in node.children)

        assert join_has_filter_child(optimized)

    def test_product_with_spanning_predicate_becomes_join(self, db):
        r, s, _ = db
        plan = Select(Product(r, s), col("r.k").eq(col("s.k")))
        optimized = assert_equivalent(plan)
        assert _contains_join(optimized)
        assert not _contains_product(optimized)

    def test_conjunction_split(self, db):
        r, s, _ = db
        plan = Select(
            Product(r, s),
            col("r.k").eq(col("s.k")) & (col("r.v") > lit(1)) & (col("s.w") > lit(0)),
        )
        assert_equivalent(plan)

    def test_pushdown_through_distinct(self, db):
        r, _, _ = db
        plan = Select(Distinct(Project(r, ["r.v"])), col("r.v") > lit(2))
        optimized = assert_equivalent(plan)
        assert isinstance(optimized, Distinct)

    def test_pushdown_through_union(self, db):
        r, _, _ = db
        plan = Select(
            Union(Project(r, ["r.v"]), Project(r, ["r.k"])), col("r.v") > lit(2)
        )
        assert_equivalent(plan)


class TestJoinOrdering:
    def test_three_way_join_reordered_and_correct(self, db):
        r, s, t = db
        plan = Join(
            Join(r, s, col("r.k").eq(col("s.k"))),
            t,
            col("s.w").eq(col("t.w")),
        )
        assert_equivalent(plan)

    def test_selective_filter_drives_order(self, db):
        r, s, t = db
        plan = Select(
            Join(
                Join(r, s, col("r.k").eq(col("s.k"))),
                t,
                col("s.w").eq(col("t.w")),
            ),
            col("r.k").eq(lit(7)),
        )
        optimized = assert_equivalent(plan)
        assert estimate_rows(optimized) <= estimate_rows(plan)

    def test_cross_product_only_when_forced(self, db):
        r, s, _ = db
        plan = Product(r, s)
        optimized = optimize(plan)
        # nothing to join on: stays a product but still correct
        assert len(run_plan(optimized)) == 50 * 40


class TestColumnPruning:
    def test_pruning_narrows_join_inputs(self, db):
        r, s, _ = db
        plan = Project(
            Join(r, s, col("r.k").eq(col("s.k"))), ["r.v"]
        )
        optimized = assert_equivalent(plan)
        # the s side should not carry s.w upward
        assert _narrowest_schema_width(optimized) <= 2

    def test_final_schema_restored(self, db):
        r, s, _ = db
        plan = Join(r, s, col("r.k").eq(col("s.k")))
        optimized = optimize(plan)
        assert optimized.schema.names == plan.schema.names


class TestEstimates:
    def test_scan_estimate_is_row_count(self, db):
        r, _, _ = db
        assert estimate_rows(r) == 50

    def test_selection_reduces_estimate(self, db):
        r, _, _ = db
        sel = Select(r, col("r.v").eq(lit(0)))
        assert estimate_rows(sel) < estimate_rows(r)

    def test_equality_uses_distinct_count(self, db):
        r, _, _ = db
        sel = Select(r, col("r.v").eq(lit(0)))  # r.v has 5 distinct values
        assert estimate_rows(sel) == pytest.approx(10, rel=0.2)

    def test_join_estimate_reasonable(self, db):
        r, s, _ = db
        join = Join(r, s, col("r.k").eq(col("s.k")))
        est = estimate_rows(join)
        actual = len(run_plan(join))
        assert actual / 5 <= est <= actual * 5


def _contains_select(node: Plan) -> bool:
    if isinstance(node, Select):
        return True
    return any(_contains_select(c) for c in node.children)


def _contains_join(node: Plan) -> bool:
    if isinstance(node, Join):
        return True
    return any(_contains_join(c) for c in node.children)


def _contains_product(node: Plan) -> bool:
    if isinstance(node, Product):
        return True
    return any(_contains_product(c) for c in node.children)


def _narrowest_schema_width(node: Plan) -> int:
    widths = [len(node.schema)]
    for child in node.children:
        widths.append(_narrowest_schema_width(child))
    return min(widths)


class TestAliasQualifiedStatistics:
    """Select estimates resolve alias-qualified refs by position (PR 3)."""

    def test_aliased_estimate_matches_unaliased(self):
        from repro.relational.algebra import Rename

        rel = Relation(["d"], [(i,) for i in range(100)])
        plain = Select(Scan(rel, "t"), col("d") > lit(89))
        aliased = Select(
            Rename(Scan(rel, "t"), {"d": "o.d"}), col("o.d") > lit(89)
        )
        assert estimate_rows(aliased) == pytest.approx(estimate_rows(plain))
        # the histogram estimate (~10) applies, not the 33-row default
        assert estimate_rows(aliased) < 15

    def test_aliased_equality_uses_distinct_count(self):
        from repro.relational.algebra import Rename

        rel = Relation(["v"], [(i % 5,) for i in range(50)])
        aliased = Select(
            Rename(Scan(rel, "t"), {"v": "o.v"}), col("o.v").eq(lit(0))
        )
        assert estimate_rows(aliased) == pytest.approx(10, rel=0.2)
