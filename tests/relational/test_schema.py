"""Tests for schemas: qualified names, resolution, derived schemas."""

import pytest

from repro.relational.schema import (
    AmbiguousColumnError,
    Attribute,
    Schema,
    SchemaError,
    UnknownColumnError,
    split_qualified,
)
from repro.relational.types import DataType


class TestSplitQualified:
    def test_unqualified(self):
        assert split_qualified("orderkey") == (None, "orderkey")

    def test_qualified(self):
        assert split_qualified("o.orderkey") == ("o", "orderkey")

    def test_only_first_dot_splits(self):
        assert split_qualified("a.b.c") == ("a", "b.c")


class TestAttribute:
    def test_name_roundtrip(self):
        assert Attribute("o.orderkey").name == "o.orderkey"
        assert Attribute("orderkey").name == "orderkey"

    def test_matches_unqualified_reference(self):
        attr = Attribute("o.orderkey")
        assert attr.matches("orderkey")
        assert attr.matches("o.orderkey")
        assert not attr.matches("c.orderkey")
        assert not attr.matches("orderdate")

    def test_with_qualifier(self):
        attr = Attribute("orderkey", DataType.INT)
        qualified = attr.with_qualifier("o")
        assert qualified.name == "o.orderkey"
        assert qualified.dtype is DataType.INT

    def test_renamed_keeps_dtype(self):
        attr = Attribute("a", DataType.DATE).renamed("b")
        assert attr.name == "b"
        assert attr.dtype is DataType.DATE

    def test_equality_ignores_dtype(self):
        assert Attribute("a", DataType.INT) == Attribute("a", DataType.STR)
        assert hash(Attribute("a")) == hash(Attribute("a"))


class TestSchema:
    def test_construction_from_strings(self):
        s = Schema(["a", "b.c"])
        assert s.names == ["a", "b.c"]
        assert len(s) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_resolve_exact(self):
        s = Schema(["o.orderkey", "c.custkey"])
        assert s.resolve("o.orderkey") == 0

    def test_resolve_by_base_name(self):
        s = Schema(["o.orderkey", "c.custkey"])
        assert s.resolve("custkey") == 1

    def test_resolve_unknown_raises(self):
        s = Schema(["a"])
        with pytest.raises(UnknownColumnError):
            s.resolve("zzz")

    def test_resolve_ambiguous_raises(self):
        s = Schema(["o.custkey", "c.custkey"])
        with pytest.raises(AmbiguousColumnError):
            s.resolve("custkey")

    def test_has(self):
        s = Schema(["o.custkey", "c.custkey"])
        assert s.has("o.custkey")
        assert not s.has("custkey")  # ambiguous
        assert not s.has("nope")

    def test_concat(self):
        s = Schema(["a"]).concat(Schema(["b"]))
        assert s.names == ["a", "b"]

    def test_concat_duplicate_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"]).concat(Schema(["a"]))

    def test_project_reorders(self):
        s = Schema(["a", "b", "c"]).project(["c", "a"])
        assert s.names == ["c", "a"]

    def test_rename(self):
        s = Schema(["a", "b"]).rename({"a": "x"})
        assert s.names == ["x", "b"]

    def test_rename_to_qualified_name(self):
        s = Schema(["orderkey"]).rename({"orderkey": "o.orderkey"})
        assert s.names == ["o.orderkey"]
        assert s.attributes[0].qualifier == "o"

    def test_qualify_all(self):
        s = Schema(["a", "b"]).qualify("t")
        assert s.names == ["t.a", "t.b"]

    def test_unqualify(self):
        s = Schema(["t.a", "t.b"]).unqualify()
        assert s.names == ["a", "b"]

    def test_positions(self):
        s = Schema(["a", "b", "c"])
        assert s.positions(["b", "a"]) == [1, 0]

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a"]) != Schema(["b"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))
