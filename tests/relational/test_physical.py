"""Tests for physical operators: joins, distinct, set ops, extend."""

import pytest

from repro.relational.expressions import col, lit
from repro.relational.physical import (
    Append,
    Except,
    ExtendOp,
    Filter,
    HashDistinct,
    HashJoin,
    Materialize,
    MergeJoin,
    NestedLoopJoin,
    Projection,
    ProjectionAs,
    SeqScan,
    Sort,
    execute,
)
from repro.relational.relation import Relation


@pytest.fixture
def left():
    return SeqScan(Relation(["l.k", "l.v"], [(1, "a"), (2, "b"), (2, "c"), (None, "n")]), "left")


@pytest.fixture
def right():
    return SeqScan(Relation(["r.k", "r.w"], [(1, 10), (2, 20), (3, 30), (None, 99)]), "right")


class TestScanFilterProject:
    def test_seq_scan(self, left):
        assert len(execute(left)) == 4

    def test_filter(self, left):
        out = execute(Filter(left, col("l.k").eq(lit(2))))
        assert out.rows == [(2, "b"), (2, "c")]

    def test_projection(self, left):
        out = execute(Projection(left, ["l.v"]))
        assert out.schema.names == ["l.v"]
        assert len(out) == 4

    def test_projection_as_duplicates_columns(self, left):
        out = execute(ProjectionAs(left, [("l.k", "k1"), ("l.k", "k2")]))
        assert out.schema.names == ["k1", "k2"]
        assert out.rows[0] == (1, 1)

    def test_extend_adds_literal_column(self, left):
        out = execute(ExtendOp(left, [("z", lit(None)), ("one", lit(1))]))
        assert out.schema.names == ["l.k", "l.v", "z", "one"]
        assert out.rows[0][-2:] == (None, 1)


class TestJoins:
    def test_hash_join(self, left, right):
        out = execute(HashJoin(left, right, [("l.k", "r.k")]))
        assert sorted(out.rows) == [(1, "a", 1, 10), (2, "b", 2, 20), (2, "c", 2, 20)]

    def test_hash_join_null_keys_never_match(self, left, right):
        out = execute(HashJoin(left, right, [("l.k", "r.k")]))
        assert not any(row[0] is None for row in out.rows)

    def test_hash_join_residual(self, left, right):
        out = execute(
            HashJoin(left, right, [("l.k", "r.k")], residual=col("l.v").eq(lit("b")))
        )
        assert out.rows == [(2, "b", 2, 20)]

    def test_hash_join_requires_pairs(self, left, right):
        with pytest.raises(ValueError):
            HashJoin(left, right, [])

    def test_merge_join_equals_hash_join(self, left, right):
        h = execute(HashJoin(left, right, [("l.k", "r.k")]))
        m = execute(MergeJoin(left, right, [("l.k", "r.k")]))
        assert sorted(h.rows) == sorted(m.rows)

    def test_merge_join_residual(self, left, right):
        out = execute(
            MergeJoin(left, right, [("l.k", "r.k")], residual=col("r.w") > lit(15))
        )
        assert sorted(out.rows) == [(2, "b", 2, 20), (2, "c", 2, 20)]

    def test_nested_loop_cross(self, left, right):
        out = execute(NestedLoopJoin(left, right, None))
        assert len(out) == 16

    def test_nested_loop_theta(self, left, right):
        out = execute(NestedLoopJoin(left, right, col("l.k") < col("r.k")))
        assert all(row[0] < row[2] for row in out.rows)

    def test_empty_inputs(self, right):
        empty = SeqScan(Relation(["l.k", "l.v"], []), "empty")
        assert len(execute(HashJoin(empty, right, [("l.k", "r.k")]))) == 0
        assert len(execute(MergeJoin(empty, right, [("l.k", "r.k")]))) == 0


class TestSetOpsAndMisc:
    def test_hash_distinct(self):
        scan = SeqScan(Relation(["a"], [(1,), (1,), (2,)]), "t")
        assert execute(HashDistinct(scan)).rows == [(1,), (2,)]

    def test_append(self):
        a = SeqScan(Relation(["a"], [(1,)]), "a")
        b = SeqScan(Relation(["a"], [(2,)]), "b")
        assert execute(Append(a, b)).rows == [(1,), (2,)]

    def test_except(self):
        a = SeqScan(Relation(["a"], [(1,), (2,), (2,), (3,)]), "a")
        b = SeqScan(Relation(["a"], [(2,)]), "b")
        assert execute(Except(a, b)).rows == [(1,), (3,)]

    def test_sort(self):
        scan = SeqScan(Relation(["a", "b"], [(2, "x"), (1, "y")]), "t")
        assert execute(Sort(scan, ["a"])).rows == [(1, "y"), (2, "x")]

    def test_materialize_caches(self):
        scan = SeqScan(Relation(["a"], [(1,), (2,)]), "t")
        mat = Materialize(scan)
        assert list(mat.rows()) == list(mat.rows()) == [(1,), (2,)]

    def test_explain_labels_present(self, left, right):
        join = HashJoin(left, right, [("l.k", "r.k")], residual=col("r.w") > lit(0))
        assert join.explain_label() == "Hash Join"
        details = join.explain_details()
        assert any("Hash Cond" in d for d in details)
        assert any("Join Filter" in d for d in details)
