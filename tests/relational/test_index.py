"""Tests for the secondary-index subsystem.

Covers the index data structures (hash + sorted), attachment to relations,
the named-index registry with rebuild-on-replacement maintenance, the
planner's access-path selection, and EXPLAIN output.
"""

from __future__ import annotations

import pytest

from repro.relational import (
    Database,
    HashIndex,
    Join,
    Relation,
    Select,
    SortedIndex,
    build_index,
    col,
    ensure_index,
    indexes_on,
    lit,
)
from repro.relational.index import attach_index, detach_index
from repro.relational.physical import IndexNestedLoopJoin, IndexScan, execute
from repro.relational.planner import plan_physical


def people(n: int = 100) -> Relation:
    rows = [
        (i, i % 10, None if i % 7 == 6 else i % 5, f"name{i % 3}")
        for i in range(n)
    ]
    return Relation(["id", "dept", "grade", "name"], rows)


# ----------------------------------------------------------------------
# data structures
# ----------------------------------------------------------------------
class TestHashIndex:
    def test_point_lookup(self):
        rel = people()
        idx = HashIndex(rel, ["dept"])
        expected = [r for r in rel.rows if r[1] == 3]
        assert list(idx.lookup(3)) == expected

    def test_duplicates_preserved_in_row_order(self):
        rel = Relation(["k", "v"], [(1, "a"), (1, "a"), (2, "b"), (1, "c")])
        idx = HashIndex(rel, ["k"])
        assert list(idx.lookup(1)) == [(1, "a"), (1, "a"), (1, "c")]

    def test_null_keys_not_indexed(self):
        rel = people()
        idx = HashIndex(rel, ["grade"])
        assert list(idx.lookup(None)) == []
        assert len(idx) == sum(1 for r in rel.rows if r[2] is not None)

    def test_missing_key_empty(self):
        idx = HashIndex(people(), ["dept"])
        assert list(idx.lookup(999)) == []

    def test_multi_column_key(self):
        rel = people()
        idx = HashIndex(rel, ["dept", "name"])
        expected = [r for r in rel.rows if (r[1], r[3]) == (2, "name0")]
        assert list(idx.lookup((2, "name0"))) == expected

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            HashIndex(people(), ["dept", "dept"])


class TestSortedIndex:
    def test_point_lookup(self):
        rel = people()
        idx = SortedIndex(rel, ["dept"])
        assert sorted(idx.lookup(4)) == sorted(r for r in rel.rows if r[1] == 4)

    def test_range_bounds(self):
        rel = people()
        idx = SortedIndex(rel, ["id"])
        got = idx.range(10, 20)
        assert got == [r for r in rel.rows if 10 <= r[0] <= 20]
        got = idx.range(10, 20, lower_inclusive=False, upper_inclusive=False)
        assert got == [r for r in rel.rows if 10 < r[0] < 20]

    def test_range_results_in_relation_order(self):
        # shuffled key column: results must follow relation order anyway
        rel = Relation(["k"], [(v,) for v in (5, 1, 9, 3, 7, 2, 8)])
        idx = SortedIndex(rel, ["k"])
        assert idx.range(2, 8) == [(5,), (3,), (7,), (2,), (8,)]

    def test_open_bounds_and_ordered(self):
        rel = Relation(["k"], [(3,), (1,), (2,)])
        idx = SortedIndex(rel, ["k"])
        assert idx.range(None, 2) == [(1,), (2,)]
        assert idx.range(2, None) == [(3,), (2,)]
        assert list(idx.ordered()) == [(1,), (2,), (3,)]

    def test_empty_range(self):
        idx = SortedIndex(people(), ["id"])
        assert list(idx.range(1000, 2000)) == []

    def test_unsortable_column_raises(self):
        rel = Relation(["k"], [(1,), ("x",)])
        with pytest.raises(TypeError):
            SortedIndex(rel, ["k"])

    def test_nulls_excluded(self):
        rel = people()
        idx = SortedIndex(rel, ["grade"])
        assert len(idx) == sum(1 for r in rel.rows if r[2] is not None)

    def test_type_mismatched_lookup_matches_nothing(self):
        # equality never raises in the executor, so neither may the index
        idx = SortedIndex(people(), ["name"])
        assert list(idx.lookup(5)) == []


class TestAttachment:
    def test_build_and_attach(self):
        rel = people()
        assert indexes_on(rel) == ()
        idx = build_index(rel, ["dept"], kind="hash")
        attach_index(rel, idx)
        assert idx in indexes_on(rel)
        detach_index(rel, idx)
        assert indexes_on(rel) == ()

    def test_ensure_reuses_equivalent(self):
        rel = people()
        a = ensure_index(rel, ["dept"], kind="hash")
        b = ensure_index(rel, ["dept"], kind="hash")
        assert a is b
        c = ensure_index(rel, ["dept"], kind="sorted")
        assert c is not a
        assert len(indexes_on(rel)) == 2

    def test_ensure_respects_requested_name(self):
        # EXPLAIN attributes scans by index name: an explicitly-named
        # creation must not alias an equivalent differently-named index
        rel = people()
        a = ensure_index(rel, ["dept"], kind="hash", name="one")
        b = ensure_index(rel, ["dept"], kind="hash", name="two")
        assert a is not b and (a.name, b.name) == ("one", "two")
        assert ensure_index(rel, ["dept"], kind="hash", name="one") is a
        assert ensure_index(rel, ["dept"], kind="hash") in (a, b)

    def test_hash_listed_before_sorted(self):
        rel = people()
        s = ensure_index(rel, ["dept"], kind="sorted")
        h = ensure_index(rel, ["dept"], kind="hash")
        assert list(indexes_on(rel)) == [h, s]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_index(people(), ["dept"], kind="btree")


# ----------------------------------------------------------------------
# registry + Database integration
# ----------------------------------------------------------------------
class TestRegistry:
    def db(self) -> Database:
        db = Database()
        db.create("p", people())
        return db

    def test_create_and_drop(self):
        db = self.db()
        idx = db.create_index("idx_p_dept", "p", ["dept"])
        assert "idx_p_dept" in db.indexes
        assert idx in indexes_on(db.get("p"))
        db.drop_index("idx_p_dept")
        assert "idx_p_dept" not in db.indexes
        assert indexes_on(db.get("p")) == ()

    def test_duplicate_name_requires_replace(self):
        db = self.db()
        db.create_index("i", "p", ["dept"])
        with pytest.raises(KeyError):
            db.create_index("i", "p", ["id"])
        db.create_index("i", "p", ["id"], replace=True)
        assert db.indexes.get("i").columns == ("id",)

    def test_idempotent_create(self):
        db = self.db()
        a = db.create_index("i", "p", ["dept"])
        b = db.create_index("i", "p", ["dept"])
        assert a is b

    def test_rebuilt_on_relation_replacement(self):
        db = self.db()
        db.create_index("i", "p", ["dept"])
        old = db.indexes.get("i")
        replacement = people(17)
        db.create("p", replacement, replace=True)
        new = db.indexes.get("i")
        assert new is not old
        assert new.relation is replacement
        assert list(new.lookup(3)) == [r for r in replacement.rows if r[1] == 3]
        assert indexes_on(replacement) == (new,)

    def test_failed_replacement_leaves_catalog_untouched(self):
        # the rebuild is all-or-nothing and precedes the catalog mutation
        db = self.db()
        db.create_index("i", "p", ["dept"])
        old = db.get("p")
        old_index = db.indexes.get("i")
        with pytest.raises(Exception):
            db.create("p", Relation(["other"], [(1,)]), replace=True)
        assert db.get("p") is old
        assert db.indexes.get("i") is old_index
        assert old_index in indexes_on(old)

    def test_dropped_with_table(self):
        db = self.db()
        db.create_index("i", "p", ["dept"])
        db.drop("p")
        assert "i" not in db.indexes

    def test_definitions_and_names(self):
        db = self.db()
        db.create_index("a", "p", ["dept"])
        db.create_index("b", "p", ["id"], kind="sorted")
        assert db.index_names() == ["a", "b"]
        assert db.index_names("p") == ["a", "b"]
        assert db.indexes.definitions() == [
            ("a", "p", ("dept",), "hash"),
            ("b", "p", ("id",), "sorted"),
        ]


# ----------------------------------------------------------------------
# planner access-path selection + explain
# ----------------------------------------------------------------------
class TestAccessPathSelection:
    def db(self) -> Database:
        db = Database()
        db.create("p", people(200))
        db.create("q", Relation(["pid", "score"], [(i % 200, i) for i in range(500)]))
        return db

    def test_equality_uses_hash_index(self):
        db = self.db()
        db.create_index("idx_p_dept", "p", ["dept"])
        plan = Select(db.scan("p"), col("dept").eq(lit(3)))
        text = db.explain(plan)
        assert "Index Scan using idx_p_dept on p" in text
        assert "Index Cond: (dept = 3)" in text
        assert db.run(plan) == db.run(plan, use_indexes=False)

    def test_range_uses_sorted_index(self):
        db = self.db()
        db.create_index("idx_p_id", "p", ["id"], kind="sorted")
        plan = Select(db.scan("p"), (col("id") >= lit(10)) & (col("id") < lit(40)))
        text = db.explain(plan)
        assert "Index Scan using idx_p_id on p" in text
        assert db.run(plan) == db.run(plan, use_indexes=False)

    def test_residual_filter_applied(self):
        db = self.db()
        db.create_index("idx_p_dept", "p", ["dept"])
        plan = Select(db.scan("p"), col("dept").eq(lit(3)) & (col("id") > lit(50)))
        text = db.explain(plan)
        assert "Index Scan" in text and "Filter:" in text
        assert db.run(plan) == db.run(plan, use_indexes=False)

    def test_unselective_predicate_keeps_seq_scan(self):
        db = self.db()
        db.create_index("idx_p_name", "p", ["name"])  # ndistinct = 3
        plan = Select(db.scan("p"), col("name").eq(lit("name0")))
        assert "Seq Scan on p" in db.explain(plan)

    def test_no_index_keeps_seq_scan(self):
        db = self.db()
        plan = Select(db.scan("p"), col("dept").eq(lit(3)))
        assert "Seq Scan on p" in db.explain(plan)

    def test_merge_profile_disables_index_paths(self):
        db = self.db()
        db.create_index("idx_p_dept", "p", ["dept"])
        plan = Select(db.scan("p"), col("dept").eq(lit(3)))
        assert "Seq Scan on p" in db.explain(plan, prefer_merge_join=True)

    def test_join_uses_index_nested_loop(self):
        db = self.db()
        db.create_index("idx_p_id", "p", ["id"])
        plan = Join(
            Select(db.scan("q"), col("score") < lit(40)),
            db.scan("p"),
            col("pid").eq(col("id")),
        )
        text = db.explain(plan)
        assert "Index Nested Loop Join" in text
        assert "Index Scan using idx_p_id on p" in text
        assert db.run(plan) == db.run(plan, use_indexes=False)

    def test_join_falls_back_to_hash_join(self):
        db = self.db()
        plan = Join(db.scan("q"), db.scan("p"), col("pid").eq(col("id")))
        assert "Hash Join" in db.explain(plan)

    def test_null_point_lookup_matches_nothing(self):
        db = self.db()
        db.create_index("idx_p_grade", "p", ["grade"])
        plan = Select(db.scan("p"), col("grade").eq(lit(None)))
        assert len(db.run(plan)) == 0
        assert db.run(plan) == db.run(plan, use_indexes=False)

    def test_type_mismatched_equality_agrees_with_seq_scan(self):
        db = self.db()
        db.create_index("idx_p_dept", "p", ["dept"], kind="sorted")
        plan = Select(db.scan("p"), col("dept").eq(lit("not-an-int")))
        assert len(db.run(plan)) == 0
        assert db.run(plan) == db.run(plan, use_indexes=False)


class TestIndexScanExecution:
    @pytest.mark.parametrize("batch_size", [0, 1, 1023, 1024, 1025])
    @pytest.mark.parametrize("mode", ["rows", "blocks"])
    def test_modes_and_batch_sizes(self, batch_size, mode):
        rel = people(1030)
        idx = ensure_index(rel, ["dept"], kind="hash")
        scan = IndexScan(idx, "p", rel.schema, point=3)
        out = execute(scan, mode=mode, batch_size=batch_size)
        assert sorted(out.rows) == sorted(r for r in rel.rows if r[1] == 3)

    def test_probe_mode_produces_nothing(self):
        rel = people()
        idx = ensure_index(rel, ["dept"], kind="hash")
        scan = IndexScan(idx, "p", rel.schema, probe=True)
        assert len(execute(scan)) == 0

    def test_point_and_range_mutually_exclusive(self):
        rel = people()
        idx = ensure_index(rel, ["id"], kind="sorted")
        with pytest.raises(ValueError):
            IndexScan(idx, "p", rel.schema, point=1, lower=0)

    def test_hash_full_scan_rejected(self):
        rel = people()
        idx = ensure_index(rel, ["dept"], kind="hash")
        with pytest.raises(ValueError):
            IndexScan(idx, "p", rel.schema)

    def test_sorted_full_scan_is_ordered(self):
        rel = Relation(["k"], [(3,), (1,), (2,)])
        idx = ensure_index(rel, ["k"], kind="sorted")
        scan = IndexScan(idx, "r", rel.schema)
        assert execute(scan).rows == [(1,), (2,), (3,)]


class TestIndexNestedLoopJoinExecution:
    @pytest.mark.parametrize("batch_size", [0, 1, 1023, 1024, 1025])
    @pytest.mark.parametrize("mode", ["rows", "blocks"])
    @pytest.mark.parametrize("use_indexes", [False, True])
    def test_join_modes_and_batch_sizes(self, batch_size, mode, use_indexes):
        left = Relation(["l.k", "l.v"], [(i % 37 if i % 5 else None, i) for i in range(300)])
        right = Relation(["r.k", "r.w"], [(i % 37, i * 2) for i in range(400)])
        ensure_index(right, ["r.k"], kind="hash")
        db = Database()
        db.create("l", left)
        db.create("r", right)
        plan = Join(db.scan("l"), db.scan("r"), col("l.k").eq(col("r.k")))
        physical = plan_physical(plan, use_indexes=use_indexes)
        if use_indexes:
            assert isinstance(physical, IndexNestedLoopJoin)
        out = execute(physical, mode=mode, batch_size=batch_size)
        expected = [
            l + r for l in left.rows for r in right.rows
            if l[0] is not None and l[0] == r[0]
        ]
        assert sorted(map(repr, out.rows)) == sorted(map(repr, expected))
