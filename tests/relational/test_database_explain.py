"""Tests for the Database catalog, planner configuration, and EXPLAIN."""

import pytest

from repro.relational import (
    Database,
    Join,
    Project,
    Relation,
    Select,
    col,
    explain,
    explain_logical,
    lit,
)
from repro.relational.planner import Planner, plan_physical
from repro.relational.physical import HashJoin, MergeJoin


@pytest.fixture
def db():
    database = Database()
    database.create("r", Relation(["k", "v"], [(1, "a"), (2, "b")]))
    database.create("s", Relation(["k2", "w"], [(1, 10), (2, 20)]))
    return database


class TestCatalog:
    def test_create_and_get(self, db):
        assert len(db.get("r")) == 2

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(KeyError):
            db.create("r", Relation(["x"], []))

    def test_replace(self, db):
        db.create("r", Relation(["x"], []), replace=True)
        assert db.get("r").schema.names == ["x"]

    def test_drop(self, db):
        db.drop("s")
        assert "s" not in db

    def test_missing_relation_message_lists_names(self, db):
        with pytest.raises(KeyError, match="have"):
            db.get("nope")

    def test_names_sorted(self, db):
        assert db.names() == ["r", "s"]

    def test_total_rows(self, db):
        assert db.total_rows() == 4

    def test_size_bytes_positive(self, db):
        assert db.size_bytes() > 0


class TestRun:
    def test_run_join(self, db):
        plan = Join(db.scan("r"), db.scan("s"), col("k").eq(col("k2")))
        out = db.run(plan)
        assert sorted(out.rows) == [(1, "a", 1, 10), (2, "b", 2, 20)]

    def test_run_unoptimized_matches(self, db):
        plan = Select(
            Join(db.scan("r"), db.scan("s"), col("k").eq(col("k2"))),
            col("v").eq(lit("a")),
        )
        a = db.run(plan, optimize_first=True)
        b = db.run(plan, optimize_first=False)
        assert sorted(a.rows) == sorted(b.rows)

    def test_scan_alias(self, db):
        scan = db.scan("r", alias="t")
        assert scan.schema.names == ["t.k", "t.v"]


class TestPlannerConfig:
    def test_hash_join_default(self, db):
        plan = Join(db.scan("r"), db.scan("s"), col("k").eq(col("k2")))
        physical = plan_physical(plan)
        assert isinstance(physical, HashJoin)

    def test_merge_join_preferred(self, db):
        plan = Join(db.scan("r"), db.scan("s"), col("k").eq(col("k2")))
        physical = Planner(prefer_merge_join=True).compile(plan)
        assert isinstance(physical, MergeJoin)

    def test_merge_join_results_match(self, db):
        plan = Join(db.scan("r"), db.scan("s"), col("k").eq(col("k2")))
        assert sorted(db.run(plan).rows) == sorted(
            db.run(plan, prefer_merge_join=True).rows
        )


class TestExplain:
    def test_explain_contains_operators(self, db):
        plan = Project(
            Join(db.scan("r"), db.scan("s"), col("k").eq(col("k2"))), ["v", "w"]
        )
        text = db.explain(plan)
        assert "Hash Join" in text
        assert "Seq Scan on r" in text
        assert "rows=" in text

    def test_explain_merge_join_shows_merge_cond(self, db):
        plan = Join(db.scan("r"), db.scan("s"), col("k").eq(col("k2")))
        text = db.explain(plan, prefer_merge_join=True)
        assert "Merge Join" in text
        assert "Merge Cond" in text
        assert "Sort" in text

    def test_explain_logical(self, db):
        plan = Select(db.scan("r"), col("k") > lit(0))
        text = explain_logical(plan)
        assert "Filter" in text and "Seq Scan" in text

    def test_explain_dispatches_on_type(self, db):
        plan = Select(db.scan("r"), col("k") > lit(0))
        assert "Filter" in explain(plan)  # logical path
        assert "Filter" in explain(plan_physical(plan))  # physical path
