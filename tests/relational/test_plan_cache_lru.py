"""Plan-cache eviction: LRU order, planning-cost weights, hot-set pin.

PR 4's wholesale clear at 256 entries is gone: a serving workload churns
ad-hoc statement shapes through the cache, and clearing would throw away
the hot prepared statements along with the one-offs.  These tests drive
the cache through its module API with synthetic entries (empty dependency
lists keep them epoch-valid forever).
"""

from __future__ import annotations

import pytest

from repro.relational import plancache


@pytest.fixture()
def tiny_cache(monkeypatch):
    """Shrink capacity/windows so eviction is observable with few entries."""
    monkeypatch.setattr(plancache, "_PLAN_CACHE_LIMIT", 4)
    monkeypatch.setattr(plancache, "_HOT_PIN_CAP", 2)
    monkeypatch.setattr(plancache, "_HOT_PIN_HITS", 3)
    monkeypatch.setattr(plancache, "_EVICT_WINDOW", 2)
    plancache.reset_plan_cache()
    yield
    plancache.reset_plan_cache()


def store(name, cost=1.0, cls="scan"):
    plancache.cache_store((name,), f"payload-{name}", deps=[], cost_class=cls, plan_cost=cost)


def present(name):
    return plancache.cache_contains((name,))


def test_capacity_is_respected_without_wholesale_clear(tiny_cache):
    for i in range(10):
        store(f"q{i}")
    stats = plancache.plan_cache_stats()
    assert stats["size"] == 4
    assert stats["evictions"] == 6
    # the newest entries survived — no wholesale clear
    assert present("q9") and present("q8")


def test_eviction_prefers_the_lru_end(tiny_cache):
    for name in ("a", "b", "c", "d"):
        store(name)
    assert plancache.cache_lookup(("a",)) is not None  # refresh a: now MRU
    store("e")  # evicts from the LRU window (b, c) — never a
    assert present("a") and present("e")
    assert not (present("b") and present("c"))


def test_planning_cost_picks_the_victim_inside_the_window(tiny_cache):
    store("cheap", cost=0.001)
    store("expensive", cost=1.0)
    store("x", cost=0.5)
    store("y", cost=0.5)
    store("z", cost=0.5)  # window is (cheap, expensive): cheap goes
    assert not present("cheap")
    assert present("expensive")


def test_hot_entries_are_pinned_against_eviction(tiny_cache):
    store("hot", cost=0.0)  # cheapest: the default victim
    for _ in range(3):  # _HOT_PIN_HITS lookups pin it
        assert plancache.cache_lookup(("hot",)) is not None
    assert plancache.plan_cache_stats()["pinned"] == 1
    for i in range(8):
        store(f"filler{i}", cost=1.0)
    assert present("hot")  # survived 8 insertions at capacity 4


def test_pin_cap_bounds_the_hot_set(tiny_cache):
    for name in ("h1", "h2", "h3"):
        store(name)
        for _ in range(3):
            plancache.cache_lookup((name,))
    assert plancache.plan_cache_stats()["pinned"] == 2  # cap, not 3


def test_invalidation_still_evicts_pinned_entries(tiny_cache):
    from repro.relational.relation import Relation

    relation = Relation(["a"], [(1,)])
    plancache.cache_store(("dep",), "payload", deps=[relation], plan_cost=1.0)
    for _ in range(3):
        plancache.cache_lookup(("dep",))
    assert plancache.plan_cache_stats()["pinned"] == 1
    plancache.bump_relation(relation)
    assert not present("dep")
    assert plancache.plan_cache_stats()["pinned"] == 0


def test_restore_replaces_in_place(tiny_cache):
    store("q", cost=0.1)
    store("q", cost=0.9)
    assert plancache.plan_cache_stats()["size"] == 1
    assert plancache.cache_lookup(("q",)) == "payload-q"


def test_everything_pinned_still_makes_progress(tiny_cache, monkeypatch):
    monkeypatch.setattr(plancache, "_HOT_PIN_CAP", 10)  # pin without bound
    for name in ("a", "b", "c", "d"):
        store(name)
        for _ in range(3):
            plancache.cache_lookup((name,))
    assert plancache.plan_cache_stats()["pinned"] == 4
    store("new")  # all candidates pinned: the stalest entry goes anyway
    assert present("new")
    assert plancache.plan_cache_stats()["size"] == 4


def test_concurrent_store_lookup_invalidate_is_safe(tiny_cache, monkeypatch):
    """A stress belt for the lock: stores, lookups, and bumps from many
    threads never corrupt the cache maps (sizes stay bounded, no
    exceptions escape)."""
    import threading

    from repro.relational.relation import Relation

    monkeypatch.setattr(plancache, "_PLAN_CACHE_LIMIT", 16)
    relations = [Relation(["a"], [(i,)]) for i in range(4)]
    errors = []

    def churn(thread_id):
        try:
            for i in range(200):
                relation = relations[(thread_id + i) % 4]
                plancache.cache_store(
                    (thread_id, i % 8), i, deps=[relation], plan_cost=0.1
                )
                plancache.cache_lookup((thread_id, (i + 1) % 8))
                if i % 17 == 0:
                    plancache.bump_relation(relation)
        except Exception as error:  # pragma: no cover - the assertion
            errors.append(error)

    threads = [threading.Thread(target=churn, args=(t,)) for t in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert plancache.plan_cache_stats()["size"] <= 16
