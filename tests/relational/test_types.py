"""Tests for the type machinery."""

import datetime

import pytest

from repro.relational.types import (
    DataType,
    Date,
    coerce,
    format_value,
    infer_type,
    parse_value,
)


class TestDate:
    def test_from_text(self):
        assert Date("1995-03-15") == datetime.date(1995, 3, 15)

    def test_from_components(self):
        assert Date(1995, 3, 15) == datetime.date(1995, 3, 15)

    def test_passthrough(self):
        d = datetime.date(2000, 1, 1)
        assert Date(d) is d

    def test_dates_are_comparable(self):
        assert Date("1994-01-01") < Date("1996-01-01")


class TestInferType:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (1, DataType.INT),
            (1.5, DataType.FLOAT),
            ("x", DataType.STR),
            (True, DataType.BOOL),
            (datetime.date(2000, 1, 1), DataType.DATE),
            (None, DataType.ANY),
        ],
    )
    def test_inference(self, value, expected):
        assert infer_type(value) is expected

    def test_bool_not_int(self):
        # bool is a subclass of int in Python; inference must distinguish
        assert infer_type(True) is DataType.BOOL
        assert infer_type(1) is DataType.INT


class TestParseValue:
    def test_int(self):
        assert parse_value("42", DataType.INT) == 42

    def test_float(self):
        assert parse_value("0.05", DataType.FLOAT) == 0.05

    def test_date(self):
        assert parse_value("1995-03-15", DataType.DATE) == datetime.date(1995, 3, 15)

    def test_bool(self):
        assert parse_value("true", DataType.BOOL) is True
        assert parse_value("0", DataType.BOOL) is False

    def test_empty_is_null(self):
        assert parse_value("", DataType.INT) is None

    def test_empty_string_stays_string(self):
        assert parse_value("", DataType.STR) == ""


class TestFormatValue:
    def test_null(self):
        assert format_value(None) == "NULL"

    def test_float_compact(self):
        assert format_value(0.05) == "0.05"

    def test_date_iso(self):
        assert format_value(datetime.date(1995, 3, 15)) == "1995-03-15"


class TestCoerce:
    def test_identity(self):
        assert coerce(5, DataType.INT) == 5

    def test_int_to_float(self):
        assert coerce(5, DataType.FLOAT) == 5.0

    def test_whole_float_to_int(self):
        assert coerce(5.0, DataType.INT) == 5

    def test_fractional_float_to_int_rejected(self):
        with pytest.raises(TypeError):
            coerce(5.5, DataType.INT)

    def test_str_to_date(self):
        assert coerce("1995-03-15", DataType.DATE) == datetime.date(1995, 3, 15)

    def test_anything_to_str(self):
        assert coerce(42, DataType.STR) == "42"

    def test_none_passthrough(self):
        assert coerce(None, DataType.INT) is None
