"""Tests for the block-at-a-time executor and compiled expressions.

Two families:

* batch-boundary tests — every physical operator is executed in both
  ``mode="rows"`` and ``mode="blocks"`` over inputs of size 0, 1, one
  batch exactly, and one batch ± 1, and must produce identical bags;
* property tests — randomized logical plans (and randomized predicates)
  must evaluate identically through the legacy iterators, the block
  executor, and compiled expressions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.algebra import Distinct, Join, Product, Project, Scan, Select, Union
from repro.relational.expressions import col, compile_expression, lit
from repro.relational.physical import (
    BATCH_SIZE,
    Append,
    Except,
    ExtendOp,
    Filter,
    HashDistinct,
    HashJoin,
    Materialize,
    MergeJoin,
    NestedLoopJoin,
    Projection,
    ProjectionAs,
    SemiJoinOp,
    SeqScan,
    Sort,
    execute,
)
from repro.relational.planner import plan_physical
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: Small batch size so "exactly one batch" inputs stay cheap to build.
B = 4

#: Input sizes around the batch boundary: empty, singleton, one batch
#: exactly, and one batch minus/plus one row.
BOUNDARY_SIZES = [0, 1, B - 1, B, B + 1]


def left_relation(n: int) -> Relation:
    # every third key is NULL, values repeat so distinct/except have work
    rows = [(None if i % 3 == 2 else i % 5, f"v{i % 4}") for i in range(n)]
    return Relation(["l.k", "l.v"], rows)


def right_relation(n: int) -> Relation:
    rows = [(None if i % 4 == 3 else i % 5, i * 10) for i in range(n)]
    return Relation(["r.k", "r.w"], rows)


def assert_modes_agree(plan, batch_size: int = B) -> None:
    via_rows = execute(plan, mode="rows")
    via_blocks = execute(plan, mode="blocks", batch_size=batch_size)
    assert via_blocks.schema.names == via_rows.schema.names
    assert sorted(map(repr, via_blocks.rows)) == sorted(map(repr, via_rows.rows))


@pytest.mark.parametrize("n", BOUNDARY_SIZES)
class TestBatchBoundaries:
    """Every operator, at every input size around the batch boundary."""

    def test_seq_scan(self, n):
        assert_modes_agree(SeqScan(left_relation(n), "l"))

    def test_filter(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_modes_agree(Filter(scan, col("l.k") > lit(1)))

    def test_filter_all_rows_pass(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_modes_agree(Filter(scan, col("l.v").ne(lit("nope"))))

    def test_projection(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_modes_agree(Projection(scan, ["l.v"]))

    def test_projection_as(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_modes_agree(ProjectionAs(scan, [("l.k", "k1"), ("l.k", "k2"), ("l.v", "v")]))

    def test_extend(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_modes_agree(ExtendOp(scan, [("kk", col("l.k") + col("l.k")), ("one", lit(1))]))

    def test_hash_join(self, n):
        left = SeqScan(left_relation(n), "l")
        right = SeqScan(right_relation(n), "r")
        assert_modes_agree(HashJoin(left, right, [("l.k", "r.k")]))

    def test_hash_join_residual(self, n):
        left = SeqScan(left_relation(n), "l")
        right = SeqScan(right_relation(n), "r")
        assert_modes_agree(
            HashJoin(left, right, [("l.k", "r.k")], residual=col("r.w") > lit(0))
        )

    def test_merge_join(self, n):
        left = SeqScan(left_relation(n), "l")
        right = SeqScan(right_relation(n), "r")
        assert_modes_agree(MergeJoin(left, right, [("l.k", "r.k")]))

    def test_merge_join_residual(self, n):
        left = SeqScan(left_relation(n), "l")
        right = SeqScan(right_relation(n), "r")
        assert_modes_agree(
            MergeJoin(left, right, [("l.k", "r.k")], residual=col("r.w") > lit(10))
        )

    def test_nested_loop_cross(self, n):
        left = SeqScan(left_relation(n), "l")
        right = SeqScan(right_relation(min(n, B)), "r")
        assert_modes_agree(NestedLoopJoin(left, right, None))

    def test_nested_loop_theta(self, n):
        left = SeqScan(left_relation(n), "l")
        right = SeqScan(right_relation(n), "r")
        assert_modes_agree(NestedLoopJoin(left, right, col("l.k") < col("r.k")))

    def test_semi_join_hash(self, n):
        left = SeqScan(left_relation(n), "l")
        right = SeqScan(right_relation(n), "r")
        assert_modes_agree(
            SemiJoinOp(left, right, col("l.k").eq(col("r.k")) & (col("r.w") > lit(0)))
        )

    def test_semi_join_loop(self, n):
        left = SeqScan(left_relation(n), "l")
        right = SeqScan(right_relation(n), "r")
        assert_modes_agree(SemiJoinOp(left, right, col("l.k") < col("r.k")))

    def test_hash_distinct(self, n):
        assert_modes_agree(HashDistinct(SeqScan(left_relation(n), "l")))

    def test_append(self, n):
        a = SeqScan(left_relation(n), "a")
        b = SeqScan(left_relation(max(n - 1, 0)), "b")
        assert_modes_agree(Append(a, b))

    def test_except(self, n):
        a = SeqScan(left_relation(n), "a")
        b = SeqScan(left_relation(n // 2), "b")
        assert_modes_agree(Except(a, b))

    def test_sort(self, n):
        assert_modes_agree(Sort(SeqScan(left_relation(n), "l"), ["l.v", "l.k"]))

    def test_materialize(self, n):
        assert_modes_agree(Materialize(SeqScan(left_relation(n), "l")))


class TestBatchMechanics:
    def test_scan_batch_sizes(self):
        scan = SeqScan(left_relation(B + 1), "l")
        batches = list(scan.batches(B))
        assert [len(b) for b in batches] == [B, 1]

    def test_batch_stats_recorded(self):
        scan = SeqScan(left_relation(2 * B), "l")
        plan = Filter(scan, col("l.k") > lit(0))
        execute(plan, mode="blocks", batch_size=B)
        assert scan.actual_rows == 2 * B
        assert scan.actual_batches == 2
        assert plan.actual_rows == sum(1 for r in left_relation(2 * B).rows if r[0] is not None and r[0] > 0)

    def test_default_batch_size_used(self):
        scan = SeqScan(left_relation(BATCH_SIZE + 1), "l")
        out = execute(scan)  # defaults: blocks mode, BATCH_SIZE
        assert len(out) == BATCH_SIZE + 1
        assert scan.actual_batches == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            execute(SeqScan(left_relation(1), "l"), mode="vectors")

    def test_explain_analyze_reports_actuals(self):
        left = SeqScan(left_relation(B + 1), "l")
        right = SeqScan(right_relation(B), "r")
        plan = HashJoin(left, right, [("l.k", "r.k")])
        from repro.relational.explain import explain_analyze

        result, text = explain_analyze(plan, batch_size=B)
        assert "actual rows=" in text and "batches=" in text
        assert f"actual rows={len(result)}" in text.splitlines()[0]


# ----------------------------------------------------------------------
# property tests: rows mode == blocks mode on randomized plans
# ----------------------------------------------------------------------
values = st.integers(min_value=0, max_value=4)
rows_r = st.lists(st.tuples(values, values), min_size=0, max_size=9)
rows_s = st.lists(st.tuples(values, values), min_size=0, max_size=9)
batch_sizes = st.sampled_from([1, 2, 3, 7, 1024])


@st.composite
def predicates(draw, columns):
    column = draw(st.sampled_from(columns))
    op = draw(st.sampled_from(["eq", "lt", "gt", "ne"]))
    value = draw(values)
    c = col(column)
    if op == "eq":
        return c.eq(lit(value))
    if op == "ne":
        return c.ne(lit(value))
    if op == "lt":
        return c < lit(value)
    return c > lit(value)


@st.composite
def plans(draw):
    r = Scan(Relation(["r.a", "r.b"], draw(rows_r)), "r")
    s = Scan(Relation(["s.c", "s.d"], draw(rows_s)), "s")
    shape = draw(
        st.sampled_from(
            ["select", "join", "join_select", "project_join", "distinct", "product", "union"]
        )
    )
    if shape == "select":
        return Select(Select(r, draw(predicates(["r.a", "r.b"]))), draw(predicates(["r.a", "r.b"])))
    if shape == "join":
        return Join(r, s, col("r.a").eq(col("s.c")))
    if shape == "join_select":
        pred = draw(predicates(["r.a", "r.b", "s.c", "s.d"]))
        return Select(Join(r, s, col("r.a").eq(col("s.c"))), pred)
    if shape == "project_join":
        return Project(Join(r, s, col("r.b").eq(col("s.d"))), ["r.a", "s.c"])
    if shape == "product":
        return Select(Product(r, s), draw(predicates(["r.a", "s.d"])))
    if shape == "union":
        return Union(Project(r, ["r.a"]), Project(s, ["s.c"]))
    return Distinct(Project(Select(r, draw(predicates(["r.a"]))), ["r.b"]))


def bag(relation: Relation):
    return sorted(map(repr, relation.rows))


@given(plans(), batch_sizes, st.booleans())
@settings(max_examples=120, deadline=None)
def test_blocks_mode_equals_rows_mode(plan, batch_size, prefer_merge_join):
    physical = plan_physical(plan, prefer_merge_join=prefer_merge_join)
    via_rows = execute(physical, mode="rows")
    via_blocks = execute(physical, mode="blocks", batch_size=batch_size)
    assert bag(via_blocks) == bag(via_rows)
    assert via_blocks.schema.names == via_rows.schema.names


# ----------------------------------------------------------------------
# property tests: compiled expressions == bound closures
# ----------------------------------------------------------------------
@st.composite
def expressions(draw, depth=2):
    leafs = [col("a"), col("b"), col("c"), lit(draw(values)), lit("x"), lit(None)]
    if depth == 0:
        return draw(st.sampled_from(leafs))
    kind = draw(
        st.sampled_from(
            ["cmp", "and", "or", "not", "arith", "isnull", "inlist", "between"]
        )
    )
    sub = expressions(depth=depth - 1)
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        from repro.relational.expressions import Comparison

        return Comparison(op, draw(st.sampled_from(leafs[:4])), draw(st.sampled_from(leafs[:4])))
    if kind == "and":
        return draw(sub) & draw(sub)
    if kind == "or":
        return draw(sub) | draw(sub)
    if kind == "not":
        return ~draw(sub)
    if kind == "arith":
        op = draw(st.sampled_from(["+", "-", "*"]))
        from repro.relational.expressions import Arithmetic

        return Arithmetic(op, draw(st.sampled_from(leafs[:4])), draw(st.sampled_from(leafs[:4])))
    if kind == "isnull":
        return col(draw(st.sampled_from(["a", "b", "c"]))).is_null()
    if kind == "inlist":
        return col(draw(st.sampled_from(["a", "b", "c"]))).in_list([0, 2, 4])
    return col(draw(st.sampled_from(["a", "b"]))).between(1, 3)


maybe_values = st.one_of(values, st.none())


@given(expressions(), st.lists(st.tuples(maybe_values, maybe_values, maybe_values), max_size=12))
@settings(max_examples=200, deadline=None)
def test_compiled_expression_equals_bound(expr, rows):
    schema = Schema(["a", "b", "c"])
    bound = expr.bind(schema)
    compiled = compile_expression(expr, schema)
    for row in rows:
        try:
            expected = bound(row)
        except TypeError:
            # mixed-type comparisons raise identically on both paths
            with pytest.raises(TypeError):
                compiled(row)
            continue
        assert compiled(row) == expected, f"{expr!r} on {row}"
