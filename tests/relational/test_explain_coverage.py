"""EXPLAIN coverage for every physical operator and plan shape."""

import pytest

from repro.relational import (
    Difference,
    Distinct,
    Extend,
    Join,
    Product,
    Project,
    ProjectAs,
    Relation,
    Rename,
    Scan,
    Select,
    SemiJoin,
    Union,
    col,
    explain,
    lit,
)
from repro.relational.planner import plan_physical


@pytest.fixture
def scans():
    r = Scan(Relation(["a", "b"], [(1, 2)] * 5), "r")
    s = Scan(Relation(["c", "d"], [(1, 9)] * 5), "s")
    return r, s


def text_of(plan, **kwargs):
    return explain(plan_physical(plan, **kwargs))


class TestOperatorLabels:
    def test_filter(self, scans):
        r, _ = scans
        assert "Filter" in text_of(Select(r, col("a") > lit(0)))

    def test_projection(self, scans):
        r, _ = scans
        out = text_of(Project(r, ["b"]))
        assert "Project" in out and "Output: b" in out

    def test_project_as(self, scans):
        r, _ = scans
        out = text_of(ProjectAs(r, [("a", "x"), ("a", "y")]))
        assert "a AS x" in out

    def test_extend(self, scans):
        r, _ = scans
        out = text_of(Extend(r, [("z", lit(None))]))
        assert "Extend" in out and "AS z" in out

    def test_hash_join(self, scans):
        r, s = scans
        out = text_of(Join(r, s, col("a").eq(col("c"))))
        assert "Hash Join" in out and "Hash Cond" in out

    def test_merge_join(self, scans):
        r, s = scans
        out = text_of(Join(r, s, col("a").eq(col("c"))), prefer_merge_join=True)
        assert "Merge Join" in out and "Sort Key" in out

    def test_nested_loop(self, scans):
        r, s = scans
        out = text_of(Join(r, s, col("a") < col("c")))
        assert "Nested Loop" in out and "Join Filter" in out

    def test_semi_join(self, scans):
        r, s = scans
        out = text_of(SemiJoin(r, s, col("a").eq(col("c"))))
        assert "Semi Join" in out

    def test_product(self, scans):
        r, s = scans
        assert "Nested Loop" in text_of(Product(r, s))

    def test_union(self, scans):
        r, _ = scans
        out = text_of(Union(Project(r, ["a"]), Project(r, ["b"])))
        assert "Append" in out

    def test_difference(self, scans):
        r, _ = scans
        out = text_of(Difference(Project(r, ["a"]), Project(r, ["b"])))
        assert "SetOp Except" in out

    def test_distinct(self, scans):
        r, _ = scans
        assert "HashAggregate" in text_of(Distinct(r))

    def test_rename(self, scans):
        r, _ = scans
        assert "Rename" in text_of(Rename(r, {"a": "z"}))


class TestPlanShape:
    def test_row_estimates_shown(self, scans):
        r, _ = scans
        assert "rows=5" in text_of(r)

    def test_children_indented(self, scans):
        r, s = scans
        out = text_of(Join(r, s, col("a").eq(col("c"))))
        lines = out.splitlines()
        scan_lines = [l for l in lines if "Seq Scan" in l]
        assert len(scan_lines) == 2
        assert all(l.lstrip().startswith("->") for l in scan_lines)

    def test_unknown_logical_node_rejected(self):
        from repro.relational.algebra import Plan
        from repro.relational.planner import Planner

        class Bogus(Plan):
            pass

        with pytest.raises(TypeError):
            Planner().compile(Bogus())
