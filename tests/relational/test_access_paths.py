"""Property tests: indexed plans ≡ sequential plans.

The access-path layer must be purely a physical choice: for any query,
any batch size, and either execution mode, a plan compiled with indexes
available returns exactly the same bag of rows as the same plan compiled
with ``use_indexes=False`` (all-sequential scans + hash joins).

Randomized over predicates (equality / range / BETWEEN / IN / NULL
tests), join shapes, both executor modes, and batch sizes around the
block boundary including 0 and 1.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.algebra import Join, Project, Scan, Select
from repro.relational.expressions import col, lit
from repro.relational.index import ensure_index
from repro.relational.optimizer import optimize
from repro.relational.physical import execute
from repro.relational.planner import plan_physical
from repro.relational.relation import Relation

values = st.one_of(st.integers(min_value=0, max_value=9), st.none())
rows_r = st.lists(st.tuples(values, values), min_size=0, max_size=30)
rows_s = st.lists(st.tuples(values, values), min_size=0, max_size=30)
batch_sizes = st.sampled_from([0, 1, 2, 7, 1023, 1024, 1025])
modes = st.sampled_from(["rows", "blocks"])


@st.composite
def predicates(draw, columns):
    column = col(draw(st.sampled_from(columns)))
    kind = draw(st.sampled_from(["eq", "lt", "gt", "between", "in", "isnull", "and"]))
    v = draw(st.integers(min_value=0, max_value=9))
    if kind == "eq":
        return column.eq(lit(v))
    if kind == "lt":
        return column < lit(v)
    if kind == "gt":
        return column > lit(v)
    if kind == "between":
        lo = draw(st.integers(min_value=0, max_value=9))
        return column.between(min(lo, v), max(lo, v))
    if kind == "in":
        return column.in_list([v, (v + 3) % 10])
    if kind == "isnull":
        return column.is_null()
    other = col(draw(st.sampled_from(columns)))
    return (column >= lit(min(v, 5))) & (other <= lit(max(v, 5)))


@st.composite
def plans(draw):
    """A Select/Join/Project plan over two indexed base relations."""
    r = Relation(["r.a", "r.b"], draw(rows_r))
    s = Relation(["s.c", "s.d"], draw(rows_s))
    # every column gets an index; sortable because values are int-or-None
    for rel, names in ((r, ["r.a", "r.b"]), (s, ["s.c", "s.d"])):
        for name in names:
            ensure_index(rel, [name], kind="hash")
            ensure_index(rel, [name], kind="sorted")
    r_scan, s_scan = Scan(r, "r"), Scan(s, "s")
    shape = draw(st.sampled_from(["select", "join", "join_select", "project"]))
    if shape == "select":
        return Select(r_scan, draw(predicates(["r.a", "r.b"])))
    join = Join(
        Select(r_scan, draw(predicates(["r.a", "r.b"]))),
        s_scan,
        col("r.a").eq(col("s.c")),
    )
    if shape == "join":
        return join
    if shape == "join_select":
        return Select(join, draw(predicates(["r.b", "s.d"])))
    return Project(join, ["r.b", "s.d"])


def bag(relation: Relation):
    return sorted(map(repr, relation.rows))


@given(plans(), batch_sizes, modes, st.booleans())
@settings(max_examples=150, deadline=None)
def test_indexed_plans_equal_sequential_plans(plan, batch_size, mode, optimize_first):
    logical = optimize(plan) if optimize_first else plan
    with_indexes = execute(
        plan_physical(logical, use_indexes=True), mode=mode, batch_size=batch_size
    )
    without_indexes = execute(
        plan_physical(logical, use_indexes=False), mode=mode, batch_size=batch_size
    )
    assert bag(with_indexes) == bag(without_indexes)
    assert with_indexes.schema.names == without_indexes.schema.names


@given(plans(), batch_sizes)
@settings(max_examples=60, deadline=None)
def test_indexed_blocks_equal_indexed_rows(plan, batch_size):
    physical = plan_physical(optimize(plan), use_indexes=True)
    via_blocks = execute(physical, mode="blocks", batch_size=batch_size)
    via_rows = execute(physical, mode="rows")
    assert bag(via_blocks) == bag(via_rows)
