"""Tests for the columnar executor (``mode="columns"``).

Three families:

* ColumnBatch mechanics — transposition round trips at the boundaries
  (empty, one row, zero-width schemas);
* batch-boundary tests — every physical operator executed in all three
  modes over inputs of size 0, 1, one batch exactly, and one batch ± 1,
  producing identical bags;
* property tests — randomized plans (with and without fusion, with and
  without indexes) must evaluate identically through ``rows``, ``blocks``,
  and ``columns`` across batch sizes {0, 1, 1023, 1024, 1025}.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational.algebra import (
    Distinct,
    Join,
    Product,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relational.columnar import ColumnBatch
from repro.relational.expressions import col, lit
from repro.relational.index import ensure_index
from repro.relational.optimizer import optimize
from repro.relational.physical import (
    Append,
    Except,
    ExtendOp,
    Filter,
    FusedPipeline,
    HashDistinct,
    HashJoin,
    Materialize,
    MergeJoin,
    NestedLoopJoin,
    Projection,
    ProjectionAs,
    SemiJoinOp,
    SeqScan,
    Sort,
    execute,
)
from repro.relational.planner import plan_physical
from repro.relational.relation import Relation

B = 4
BOUNDARY_SIZES = [0, 1, B - 1, B, B + 1]


def left_relation(n: int) -> Relation:
    rows = [(None if i % 3 == 2 else i % 5, f"v{i % 4}") for i in range(n)]
    return Relation(["l.k", "l.v"], rows)


def right_relation(n: int) -> Relation:
    rows = [(None if i % 4 == 3 else i % 5, i * 10) for i in range(n)]
    return Relation(["r.k", "r.w"], rows)


def assert_columns_match_rows(plan, batch_size: int = B) -> None:
    via_rows = execute(plan, mode="rows")
    via_columns = execute(plan, mode="columns", batch_size=batch_size)
    assert via_columns.schema.names == via_rows.schema.names
    assert sorted(map(repr, via_columns.rows)) == sorted(map(repr, via_rows.rows))


class TestColumnBatch:
    def test_round_trip(self):
        rows = [(1, "a"), (None, "b"), (3, None)]
        batch = ColumnBatch.from_rows(rows, 2)
        assert batch.length == len(batch) == 3
        assert batch.to_rows() == rows

    def test_empty(self):
        batch = ColumnBatch.from_rows([], 2)
        assert batch.length == 0
        assert batch.columns == [[], []]
        assert batch.to_rows() == []

    def test_zero_width(self):
        batch = ColumnBatch([], 3)
        assert batch.to_rows() == [(), (), ()]


@pytest.mark.parametrize("n", BOUNDARY_SIZES)
class TestColumnarBatchBoundaries:
    """Every operator, in columns mode, at every batch-boundary size."""

    def test_seq_scan(self, n):
        assert_columns_match_rows(SeqScan(left_relation(n), "l"))

    def test_filter(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_columns_match_rows(Filter(scan, col("l.k") > lit(1)))

    def test_projection(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_columns_match_rows(Projection(scan, ["l.v"]))

    def test_projection_as(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_columns_match_rows(
            ProjectionAs(scan, [("l.k", "k1"), ("l.k", "k2"), ("l.v", "v")])
        )

    def test_extend(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_columns_match_rows(
            ExtendOp(scan, [("kk", col("l.k") + col("l.k")), ("one", lit(1))])
        )

    def test_fused_pipeline(self, n):
        scan = SeqScan(left_relation(n), "l")
        fused = FusedPipeline(
            scan, col("l.k") > lit(0), [1, 0], scan.schema.project(["l.v", "l.k"])
        )
        assert_columns_match_rows(fused)

    def test_fused_pipeline_filter_only(self, n):
        scan = SeqScan(left_relation(n), "l")
        assert_columns_match_rows(
            FusedPipeline(scan, col("l.v").ne(lit("v1")), None, scan.schema)
        )

    def test_hash_join(self, n):
        assert_columns_match_rows(
            HashJoin(
                SeqScan(left_relation(n), "l"),
                SeqScan(right_relation(n), "r"),
                [("l.k", "r.k")],
            )
        )

    def test_hash_join_residual(self, n):
        assert_columns_match_rows(
            HashJoin(
                SeqScan(left_relation(n), "l"),
                SeqScan(right_relation(n), "r"),
                [("l.k", "r.k")],
                residual=col("r.w") > lit(0),
            )
        )

    def test_hash_join_folded_output(self, n):
        join = HashJoin(
            SeqScan(left_relation(n), "l"),
            SeqScan(right_relation(n), "r"),
            [("l.k", "r.k")],
            residual=col("r.w") > lit(0),
        )
        join.set_output([3, 1], join.schema.project(["r.w", "l.v"]))
        assert_columns_match_rows(join)

    def test_index_join_folded_output(self, n):
        inner = right_relation(n)
        index = ensure_index(inner, ["r.k"], kind="hash")
        outer = SeqScan(left_relation(n), "l")
        from repro.relational.physical import IndexNestedLoopJoin, IndexScan

        probe = IndexScan(index, "r", inner.schema, probe=True)
        join = IndexNestedLoopJoin(outer, probe, index, [0], [("l.k", "r.k")])
        join.set_output([2, 1], join.schema.project(["r.k", "l.v"]))
        assert_columns_match_rows(join)

    def test_merge_join(self, n):
        assert_columns_match_rows(
            MergeJoin(
                SeqScan(left_relation(n), "l"),
                SeqScan(right_relation(n), "r"),
                [("l.k", "r.k")],
                residual=col("r.w") > lit(10),
            )
        )

    def test_nested_loop(self, n):
        assert_columns_match_rows(
            NestedLoopJoin(
                SeqScan(left_relation(n), "l"),
                SeqScan(right_relation(min(n, B)), "r"),
                col("l.k") < col("r.k"),
            )
        )

    def test_semi_join(self, n):
        assert_columns_match_rows(
            SemiJoinOp(
                SeqScan(left_relation(n), "l"),
                SeqScan(right_relation(n), "r"),
                col("l.k").eq(col("r.k")) & (col("r.w") > lit(0)),
            )
        )

    def test_hash_distinct(self, n):
        assert_columns_match_rows(HashDistinct(SeqScan(left_relation(n), "l")))

    def test_append(self, n):
        assert_columns_match_rows(
            Append(
                SeqScan(left_relation(n), "a"),
                SeqScan(left_relation(max(n - 1, 0)), "b"),
            )
        )

    def test_except(self, n):
        assert_columns_match_rows(
            Except(
                SeqScan(left_relation(n), "a"), SeqScan(left_relation(n // 2), "b")
            )
        )

    def test_sort(self, n):
        assert_columns_match_rows(
            Sort(SeqScan(left_relation(n), "l"), ["l.v", "l.k"])
        )

    def test_materialize(self, n):
        assert_columns_match_rows(Materialize(SeqScan(left_relation(n), "l")))


class TestMergeJoinPresorted:
    """Merge join consuming SortedIndex.ordered instead of re-sorting."""

    def test_presorted_inputs_skip_the_sorts(self):
        left = Relation(["l.k", "l.v"], [(i % 7, i) for i in range(40)])
        right = Relation(["r.k", "r.w"], [(i % 5, i * 2) for i in range(30)])
        ensure_index(left, ["l.k"], kind="sorted")
        ensure_index(right, ["r.k"], kind="sorted")
        join = MergeJoin(
            SeqScan(left, "l"), SeqScan(right, "r"), [("l.k", "r.k")]
        )
        via_columns = execute(join, mode="columns")
        # the Sort children were never drained: the join consumed the
        # indexes' ordered rows directly
        assert join.left.actual_rows is None
        assert join.right.actual_rows is None
        reference = MergeJoin(
            SeqScan(left, "l"), SeqScan(right, "r"), [("l.k", "r.k")]
        )
        via_rows = execute(reference, mode="rows")
        assert sorted(via_columns.rows) == sorted(via_rows.rows)

    def test_presorted_with_nulls_matches_sorting_path(self):
        left = Relation(["l.k"], [(None,), (1,), (2,), (1,)])
        right = Relation(["r.k"], [(1,), (None,), (3,)])
        ensure_index(left, ["l.k"], kind="sorted")
        ensure_index(right, ["r.k"], kind="sorted")
        join = MergeJoin(SeqScan(left, "l"), SeqScan(right, "r"), [("l.k", "r.k")])
        assert_columns_match_rows(join)

    def test_one_presorted_side_falls_back(self):
        left = Relation(["l.k"], [(2,), (1,)])
        ensure_index(left, ["l.k"], kind="sorted")
        right = Relation(["r.k"], [(1,), (2,)])
        join = MergeJoin(SeqScan(left, "l"), SeqScan(right, "r"), [("l.k", "r.k")])
        assert len(execute(join, mode="columns")) == 2

    def test_cross_type_keys_match_sorting_path(self):
        # 1 == 1.0 under raw comparison but not under _sort_key: the
        # presorted path must agree with the index-free merge join
        left = Relation(["l.k", "l.v"], [(1, "l")])
        right = Relation(["r.k", "r.w"], [(1.0, "r")])
        ensure_index(left, ["l.k"], kind="sorted")
        ensure_index(right, ["r.k"], kind="sorted")
        join = MergeJoin(SeqScan(left, "l"), SeqScan(right, "r"), [("l.k", "r.k")])
        assert_columns_match_rows(join)
        bare = MergeJoin(
            SeqScan(Relation(["l.k", "l.v"], [(1, "l")]), "l"),
            SeqScan(Relation(["r.k", "r.w"], [(1.0, "r")]), "r"),
            [("l.k", "r.k")],
        )
        assert sorted(execute(join, mode="columns").rows) == sorted(
            execute(bare, mode="columns").rows
        )

    def test_incomparable_sides_fall_back(self):
        left = Relation(["l.k"], [(1,), (2,)])
        right = Relation(["r.k"], [("a",), ("b",)])
        ensure_index(left, ["l.k"], kind="sorted")
        ensure_index(right, ["r.k"], kind="sorted")
        join = MergeJoin(SeqScan(left, "l"), SeqScan(right, "r"), [("l.k", "r.k")])
        assert execute(join, mode="columns").rows == []


# ----------------------------------------------------------------------
# property tests: columns == blocks == rows, fused and unfused,
# indexed and sequential
# ----------------------------------------------------------------------
values = st.one_of(st.integers(min_value=0, max_value=9), st.none())
rows_r = st.lists(st.tuples(values, values), min_size=0, max_size=30)
rows_s = st.lists(st.tuples(values, values), min_size=0, max_size=30)
batch_sizes = st.sampled_from([0, 1, 1023, 1024, 1025])


@st.composite
def predicates(draw, columns):
    column = col(draw(st.sampled_from(columns)))
    kind = draw(st.sampled_from(["eq", "lt", "gt", "between", "in", "isnull", "and"]))
    v = draw(st.integers(min_value=0, max_value=9))
    if kind == "eq":
        return column.eq(lit(v))
    if kind == "lt":
        return column < lit(v)
    if kind == "gt":
        return column > lit(v)
    if kind == "between":
        lo = draw(st.integers(min_value=0, max_value=9))
        return column.between(min(lo, v), max(lo, v))
    if kind == "in":
        return column.in_list([v, (v + 3) % 10])
    if kind == "isnull":
        return column.is_null()
    other = col(draw(st.sampled_from(columns)))
    return (column >= lit(min(v, 5))) & (other <= lit(max(v, 5)))


@st.composite
def plans(draw):
    r = Relation(["r.a", "r.b"], draw(rows_r))
    s = Relation(["s.c", "s.d"], draw(rows_s))
    for rel, names in ((r, ["r.a", "r.b"]), (s, ["s.c", "s.d"])):
        for name in names:
            ensure_index(rel, [name], kind="hash")
            ensure_index(rel, [name], kind="sorted")
    r_scan, s_scan = Scan(r, "r"), Scan(s, "s")
    shape = draw(
        st.sampled_from(
            [
                "select",
                "project_select",
                "rename_select",
                "join",
                "join_select",
                "project_join",
                "distinct",
                "product",
                "union",
            ]
        )
    )
    if shape == "select":
        return Select(r_scan, draw(predicates(["r.a", "r.b"])))
    if shape == "project_select":
        return Project(
            Select(r_scan, draw(predicates(["r.a", "r.b"]))), ["r.b", "r.a", "r.b"][:2]
        )
    if shape == "rename_select":
        renamed = Rename(r_scan, {"r.a": "x.a"})
        return Project(Select(renamed, draw(predicates(["x.a", "r.b"]))), ["x.a"])
    join = Join(
        Select(r_scan, draw(predicates(["r.a", "r.b"]))),
        s_scan,
        col("r.a").eq(col("s.c")),
    )
    if shape == "join":
        return join
    if shape == "join_select":
        return Select(join, draw(predicates(["r.b", "s.d"])))
    if shape == "project_join":
        return Project(join, ["r.b", "s.d"])
    if shape == "distinct":
        return Distinct(Project(Select(r_scan, draw(predicates(["r.a"]))), ["r.b"]))
    if shape == "product":
        return Select(Product(r_scan, s_scan), draw(predicates(["r.a", "s.d"])))
    return Union(Project(r_scan, ["r.a"]), Project(s_scan, ["s.c"]))


def bag(relation: Relation):
    return sorted(map(repr, relation.rows))


@given(plans(), batch_sizes, st.booleans(), st.booleans())
@settings(max_examples=150, deadline=None)
def test_three_modes_agree(plan, batch_size, use_indexes, optimize_first):
    logical = optimize(plan) if optimize_first else plan
    unfused = plan_physical(logical, use_indexes=use_indexes, fuse=False)
    fused = plan_physical(logical, use_indexes=use_indexes, fuse=True)
    via_rows = execute(unfused, mode="rows")
    via_blocks = execute(unfused, mode="blocks", batch_size=batch_size)
    via_columns = execute(fused, mode="columns", batch_size=batch_size)
    assert bag(via_blocks) == bag(via_rows)
    assert bag(via_columns) == bag(via_rows)
    assert via_columns.schema.names == via_rows.schema.names
    # the fused tree is mode-agnostic: identical answers in every mode
    assert bag(execute(fused, mode="rows")) == bag(via_rows)
    assert bag(execute(fused, mode="blocks", batch_size=batch_size)) == bag(via_rows)


@given(plans(), batch_sizes, st.booleans())
@settings(max_examples=60, deadline=None)
def test_merge_join_profile_three_modes(plan, batch_size, fuse):
    physical = plan_physical(optimize(plan), prefer_merge_join=True, fuse=fuse)
    via_rows = execute(physical, mode="rows")
    via_columns = execute(physical, mode="columns", batch_size=batch_size)
    assert bag(via_columns) == bag(via_rows)
