"""Tests for cardinality and selectivity estimation."""

import pytest

from repro.relational.expressions import col, lit
from repro.relational.relation import Relation
from repro.relational.statistics import (
    ColumnStats,
    TableStats,
    join_cardinality,
    selectivity,
)
from repro.relational.types import Date


@pytest.fixture
def stats():
    rows = [(i, i % 10, Date(1995, 1 + i % 12, 1)) for i in range(100)]
    return TableStats(Relation(["k", "v", "d"], rows))


class TestColumnStats:
    def test_ndistinct(self, stats):
        assert stats.column("k").ndistinct == 100
        assert stats.column("v").ndistinct == 10

    def test_min_max(self, stats):
        c = stats.column("k")
        assert c.minimum == 0 and c.maximum == 99

    def test_null_fraction(self):
        c = ColumnStats([1, None, None, 4])
        assert c.null_fraction == pytest.approx(0.5)

    def test_unknown_column_is_none(self, stats):
        assert stats.column("zzz") is None

    def test_eq_selectivity(self, stats):
        assert stats.column("v").eq_selectivity() == pytest.approx(0.1)

    def test_range_selectivity_midpoint(self, stats):
        sel = stats.column("k").range_selectivity("<", 50)
        assert 0.4 < sel < 0.6

    def test_range_selectivity_clamped(self, stats):
        assert stats.column("k").range_selectivity("<", -5) <= 1e-5
        assert stats.column("k").range_selectivity(">", 200) <= 1e-5

    def test_date_ranges_estimated(self, stats):
        sel = stats.column("d").range_selectivity(">", Date(1995, 6, 15))
        assert 0.2 < sel < 0.8


class TestPredicateSelectivity:
    def test_equality(self, stats):
        assert selectivity(col("v").eq(lit(3)), stats) == pytest.approx(0.1)

    def test_inequality(self, stats):
        assert selectivity(col("v").ne(lit(3)), stats) == pytest.approx(0.9)

    def test_conjunction_multiplies(self, stats):
        e = col("v").eq(lit(3)) & col("v").eq(lit(4))
        assert selectivity(e, stats) == pytest.approx(0.01)

    def test_disjunction(self, stats):
        e = col("v").eq(lit(3)) | col("v").eq(lit(4))
        assert selectivity(e, stats) == pytest.approx(0.19)

    def test_negation(self, stats):
        e = ~col("v").eq(lit(3))
        assert selectivity(e, stats) == pytest.approx(0.9)

    def test_between(self, stats):
        e = col("k").between(25, 75)
        assert 0.2 < selectivity(e, stats) < 0.8

    def test_in_list_scales_with_size(self, stats):
        single = selectivity(col("v").in_list([1]), stats)
        triple = selectivity(col("v").in_list([1, 2, 3]), stats)
        assert triple == pytest.approx(3 * single)

    def test_without_stats_uses_defaults(self):
        assert 0 < selectivity(col("v").eq(lit(3)), None) < 1

    def test_selectivity_capped_at_one(self, stats):
        e = col("v").in_list(list(range(100)))
        assert selectivity(e, stats) == 1.0


class TestJoinCardinality:
    def test_key_foreign_key(self):
        left = ColumnStats(list(range(100)))  # key side
        right = ColumnStats([i % 100 for i in range(1000)])
        est = join_cardinality(100, 1000, left, right)
        assert est == pytest.approx(1000)

    def test_without_stats_falls_back(self):
        est = join_cardinality(100, 100, None, None)
        assert est == pytest.approx(100)
