"""Property-based tests: the optimizer and planner preserve query results.

Strategy: generate small random relations and random plan trees
(select/project/join over two tables), then check that

    execute(plan_physical(optimize(plan))) == execute(plan_physical(plan))

as bags, for every generated case.  This is the engine-level invariant all
of U-relations query processing rests on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.algebra import Distinct, Join, Plan, Product, Project, Select
from repro.relational.expressions import Expression, col, lit
from repro.relational.optimizer import optimize
from repro.relational.planner import plan_physical
from repro.relational.physical import execute
from repro.relational.relation import Relation
from repro.relational.algebra import Scan

values = st.integers(min_value=0, max_value=4)
rows_r = st.lists(st.tuples(values, values), min_size=0, max_size=8)
rows_s = st.lists(st.tuples(values, values), min_size=0, max_size=8)


def make_scans(r_rows, s_rows):
    r = Scan(Relation(["r.a", "r.b"], r_rows), "r")
    s = Scan(Relation(["s.c", "s.d"], s_rows), "s")
    return r, s


@st.composite
def predicates(draw, columns):
    column = draw(st.sampled_from(columns))
    op = draw(st.sampled_from(["eq", "lt", "gt"]))
    value = draw(values)
    c = col(column)
    if op == "eq":
        return c.eq(lit(value))
    if op == "lt":
        return c < lit(value)
    return c > lit(value)


@st.composite
def plans(draw):
    r_rows = draw(rows_r)
    s_rows = draw(rows_s)
    r, s = make_scans(r_rows, s_rows)
    shape = draw(st.sampled_from(["select", "join", "join_select", "project_join", "distinct"]))
    if shape == "select":
        pred = draw(predicates(["r.a", "r.b"]))
        extra = draw(predicates(["r.a", "r.b"]))
        return Select(Select(r, pred), extra)
    if shape == "join":
        return Join(r, s, col("r.a").eq(col("s.c")))
    if shape == "join_select":
        pred = draw(predicates(["r.a", "r.b", "s.c", "s.d"]))
        return Select(Join(r, s, col("r.a").eq(col("s.c"))), pred)
    if shape == "project_join":
        return Project(Join(r, s, col("r.b").eq(col("s.d"))), ["r.a", "s.c"])
    pred = draw(predicates(["r.a"]))
    return Distinct(Project(Select(r, pred), ["r.b"]))


def bag(relation: Relation):
    return sorted(map(repr, relation.rows))


@given(plans())
@settings(max_examples=150, deadline=None)
def test_optimizer_preserves_results(plan: Plan):
    baseline = execute(plan_physical(plan))
    optimized = execute(plan_physical(optimize(plan)))
    assert bag(optimized) == bag(baseline)
    assert optimized.schema.names == baseline.schema.names


@given(plans())
@settings(max_examples=60, deadline=None)
def test_merge_join_planner_equals_hash_join_planner(plan: Plan):
    hash_result = execute(plan_physical(plan, prefer_merge_join=False))
    merge_result = execute(plan_physical(plan, prefer_merge_join=True))
    assert bag(hash_result) == bag(merge_result)


@given(rows_r, rows_s)
@settings(max_examples=60, deadline=None)
def test_join_equals_filtered_product(r_rows, s_rows):
    """Join(p) must equal Select(p, Product) — the algebraic definition."""
    r, s = make_scans(r_rows, s_rows)
    join = Join(r, s, col("r.a").eq(col("s.c")))
    product = Select(Product(r, s), col("r.a").eq(col("s.c")))
    assert bag(execute(plan_physical(join))) == bag(execute(plan_physical(product)))
