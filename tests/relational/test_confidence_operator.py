"""The ``Confidence`` physical operator vs the tuple-at-a-time reference.

The kernel groups the translated U-relation columnar-batch-at-a-time and
computes per-group confidence through the shared memoized engine; the
reference path materializes a :class:`URelation` and calls
``confidence_relation``.  For every random database, query shape, and
execution mode the two must agree bit-for-bit on group keys and within
float tolerance on probabilities.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Conf,
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UProject,
    URelation,
    USelect,
    UUnion,
    WorldTable,
    execute_query,
)
from repro.core.probability import ConfidenceAnswer, confidence_relation
from repro.core.translate import explain_query, query_cache_key
from repro.core.urelation import tid_column
from repro.relational import col, lit
from repro.relational.plancache import cached_cost_class

# -- strategies (probabilistic twin of test_property_core's) -------------
variables = ["x", "y", "z"]
small_values = st.integers(min_value=0, max_value=2)


@st.composite
def field_triples(draw, tid: int):
    kind = draw(st.sampled_from(["certain", "one_var", "two_var"]))
    if kind == "certain":
        return [(Descriptor(), tid, (draw(small_values),))]
    if kind == "one_var":
        var = draw(st.sampled_from(variables))
        return [
            (Descriptor({var: value}), tid, (draw(small_values),))
            for value in (1, 2)
        ]
    v1, v2 = draw(
        st.lists(st.sampled_from(variables), min_size=2, max_size=2, unique=True)
    )
    return [
        (Descriptor({v1: a, v2: b}), tid, (draw(small_values),))
        for a in (1, 2)
        for b in (1, 2)
    ]


@st.composite
def prob_udatabases(draw):
    """Random two-attribute relation over a *weighted* 3-variable world."""
    probabilities = {}
    for var in variables:
        w = draw(st.integers(min_value=1, max_value=4))
        probabilities[var] = [w / (w + 1), 1 / (w + 1)]
    world = WorldTable({v: [1, 2] for v in variables}, probabilities=probabilities)
    n_tuples = draw(st.integers(min_value=1, max_value=4))
    a_triples, b_triples = [], []
    for tid in range(1, n_tuples + 1):
        a_triples.extend(draw(field_triples(tid)))
        b_triples.extend(draw(field_triples(tid)))
    u_a = URelation.build(a_triples, tid_column("r"), ["a"])
    u_b = URelation.build(b_triples, tid_column("r"), ["b"])
    udb = UDatabase(world)
    udb.add_relation("r", ["a", "b"], [u_a, u_b])
    return udb


@st.composite
def queries(draw):
    shape = draw(st.sampled_from(["rel", "select", "project", "union"]))
    if shape == "rel":
        return Rel("r")
    if shape == "select":
        column = draw(st.sampled_from(["a", "b"]))
        return USelect(Rel("r"), col(column).eq(lit(draw(small_values))))
    if shape == "project":
        column = draw(st.sampled_from(["a", "b"]))
        return UProject(Rel("r"), [column])
    left = UProject(USelect(Rel("r"), col("a").eq(lit(draw(small_values)))), ["a"])
    right = UProject(USelect(Rel("r"), col("b").eq(lit(draw(small_values)))), ["b"])
    return UUnion(left, right)


def assert_rows_match(actual, expected):
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert got[:-1] == want[:-1]
        assert got[-1] == pytest.approx(want[-1])


# -- the central equivalence --------------------------------------------
@given(prob_udatabases(), queries(), st.sampled_from(["rows", "blocks", "columns"]))
@settings(max_examples=60, deadline=None)
def test_operator_matches_tuple_at_a_time(udb, query, mode):
    answer = execute_query(Conf(query, method="exact"), udb, mode=mode)
    reference = confidence_relation(
        execute_query(query, udb), udb.world_table, method="exact"
    )
    assert isinstance(answer, ConfidenceAnswer)
    assert answer.schema.names == reference.schema.names
    assert_rows_match(list(answer.rows), list(reference.rows))


@given(prob_udatabases(), queries())
@settings(max_examples=20, deadline=None)
def test_operator_auto_matches_exact_on_small_worlds(udb, query):
    auto = execute_query(Conf(query, method="auto"), udb)
    exact = execute_query(Conf(query, method="exact"), udb)
    assert_rows_match(list(auto.rows), list(exact.rows))


@given(prob_udatabases(), queries())
@settings(max_examples=15, deadline=None)
def test_small_batches_do_not_change_groups(udb, query):
    whole = execute_query(Conf(query, method="exact"), udb)
    chopped = execute_query(Conf(query, method="exact"), udb, batch_size=1)
    assert_rows_match(list(chopped.rows), list(whole.rows))


# -- fixtures for the plumbing checks -----------------------------------
@pytest.fixture()
def vehicles_udb():
    from tests.conftest import build_vehicles_udb

    return build_vehicles_udb()


def test_answer_carries_computation_summary(vehicles_udb):
    answer = execute_query(Conf(Rel("r"), method="exact"), vehicles_udb)
    assert answer.schema.names[-1] == "conf"
    summary = answer.conf
    assert summary["method"] == "exact"
    assert summary["groups"] == len(answer.rows)
    assert summary["exact_groups"] == summary["groups"]
    assert summary["approx_groups"] == 0
    assert summary["seconds"] >= 0.0
    # descending by confidence
    confs = [row[-1] for row in answer.rows]
    assert confs == sorted(confs, reverse=True)


def test_conf_rejects_certain_child_and_bad_method(vehicles_udb):
    from repro.core import Certain

    with pytest.raises(ValueError):
        Conf(Certain(Rel("r")))
    with pytest.raises(ValueError):
        Conf(Rel("r"), method="sometimes")
    # Poss is unwrapped: conf of possible tuples == conf of the query
    via_poss = execute_query(Conf(Poss(Rel("r"))), vehicles_udb)
    direct = execute_query(Conf(Rel("r")), vehicles_udb)
    assert list(via_poss.rows) == list(direct.rows)


def test_explain_shows_confidence_node_and_cache_marker(vehicles_udb):
    query = Conf(UProject(Rel("r"), ["type"]), method="auto", epsilon=0.02)
    cold = explain_query(query, vehicles_udb)
    assert "Confidence" in cold
    assert "Group Key: type" in cold
    assert "Method: auto" in cold
    assert "Error Budget: epsilon=0.02" in cold
    assert "(cached)" not in cold
    warm = explain_query(query, vehicles_udb)
    assert "(cached)" in warm


def test_conf_queries_classify_into_their_own_cost_class(vehicles_udb):
    query = Conf(USelect(Rel("r"), col("type").eq(lit("Tank"))))
    execute_query(query, vehicles_udb)
    key = query_cache_key(query, vehicles_udb)
    assert key is not None
    assert cached_cost_class(key) == "conf"
    # the inner query alone is not a conf plan
    inner_key = query_cache_key(
        USelect(Rel("r"), col("type").eq(lit("Tank"))), vehicles_udb
    )
    assert cached_cost_class(inner_key) != "conf"


def test_trace_reports_confidence_operator_actuals(vehicles_udb):
    query = Conf(Rel("r"), method="exact")
    text, data = explain_query(query, vehicles_udb, analyze=True, trace=True)
    assert "Confidence" in text

    def find(node):
        if node["operator"] == "Confidence":
            return node
        for child in node.get("children", ()):
            hit = find(child)
            if hit is not None:
                return hit
        return None

    node = find(data["operators"])
    assert node is not None
    assert node["actual_rows"] == len(execute_query(query, vehicles_udb).rows)
