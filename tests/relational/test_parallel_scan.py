"""Partition-parallel scans: identical answers, preserved order, gating.

The :class:`~repro.relational.physical.ParallelScan` gather must be
invisible semantically: for every plan, mode, batch size, and worker
count, the parallel execution produces byte-identical output (same rows,
same order) to the serial one.  The planner only inserts it for scans
worth parallelizing, and EXPLAIN shows it as a ``Gather`` node.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import planner as planner_module
from repro.relational import physical as physical_module
from repro.relational.algebra import Join, Project, Select
from repro.relational.database import Database
from repro.relational.expressions import col, lit
from repro.relational.physical import ParallelScan, SeqScan
from repro.relational.relation import Relation


def make_db(rows: int = 6000, seed: int = 7) -> Database:
    rng = random.Random(seed)
    data = [(i, rng.randint(0, 99), f"g{i % 13}") for i in range(rows)]
    dims = [(g, f"name-{g}") for g in range(13)]
    return Database(
        {
            "fact": Relation(["a", "b", "c"], data),
            "dim": Relation(["g", "label"], [(f"g{g}", n) for g, n in dims]),
        }
    )


@pytest.fixture()
def low_thresholds(monkeypatch):
    """Force parallelization of small relations so tests stay fast."""
    monkeypatch.setattr(planner_module, "PARALLEL_SCAN_MIN_ROWS", 64.0)
    monkeypatch.setattr(physical_module, "PARALLEL_MIN_PARTITION_ROWS", 16)


@given(
    threshold=st.integers(min_value=0, max_value=99),
    batch_size=st.sampled_from([0, 1, 7, 1023, 1024, 1025]),
    workers=st.integers(min_value=2, max_value=6),
    mode=st.sampled_from(["rows", "blocks", "columns"]),
)
@settings(max_examples=25, deadline=None)
def test_parallel_equals_serial_property(threshold, batch_size, workers, mode):
    db = make_db(rows=3000)
    plan = Project(Select(db.scan("fact"), col("b") < lit(threshold)), ["a", "c"])
    serial = db.run(plan, mode=mode, batch_size=batch_size, use_indexes=False)
    parallel = db.run(
        plan, mode=mode, batch_size=batch_size, use_indexes=False, parallel=workers
    )
    assert list(serial.rows) == list(parallel.rows)  # byte-identical, ordered
    assert serial.schema.names == parallel.schema.names


def test_parallel_under_join_identical(low_thresholds):
    db = make_db(rows=2000)
    plan = Join(
        Select(db.scan("fact", alias="f"), col("f.b") < lit(60)),
        db.scan("dim", alias="d"),
        col("f.c").eq(col("d.g")),
    )
    serial = db.run(plan, use_indexes=False)
    parallel = db.run(plan, use_indexes=False, parallel=4)
    assert list(serial.rows) == list(parallel.rows)


def test_explain_shows_gather(low_thresholds):
    db = make_db(rows=2000)
    plan = Project(Select(db.scan("fact"), col("b") < lit(50)), ["a"])
    text = db.explain(plan, use_indexes=False, parallel=4)
    assert "Gather" in text
    assert "Workers Planned: 4" in text
    assert "Fused Pipeline" in text


def test_small_relations_stay_serial():
    db = make_db(rows=200)  # below PARALLEL_SCAN_MIN_ROWS
    plan = Project(Select(db.scan("fact"), col("b") < lit(50)), ["a"])
    text = db.explain(plan, use_indexes=False, parallel=4)
    assert "Gather" not in text


def test_parallel_zero_never_gathers():
    db = make_db(rows=6000)
    plan = Select(db.scan("fact"), col("b") < lit(50))
    assert "Gather" not in db.explain(plan, use_indexes=False)


def test_bounded_seq_scan_partitions_cover_exactly():
    relation = Relation(["a"], [(i,) for i in range(100)])
    scan = SeqScan(relation, "t")
    parts = [scan.bounded(s, min(s + 33, 100)) for s in range(0, 100, 33)]
    gathered = [row for part in parts for batch in part.batches(10) for row in batch]
    assert gathered == list(relation.rows)
    # columnar path agrees
    columnar = [
        row
        for part in parts
        for batch in part.column_batches(10)
        for row in batch.to_rows()
    ]
    assert columnar == list(relation.rows)


def test_gather_is_reentrant_across_threads(low_thresholds):
    """One cached parallel plan executed by many threads concurrently."""
    import threading

    db = make_db(rows=2000)
    plan = Project(Select(db.scan("fact"), col("b") < lit(70)), ["a", "b"])
    expected = list(db.run(plan, use_indexes=False).rows)
    failures = []

    def worker():
        for _ in range(5):
            got = list(db.run(plan, use_indexes=False, parallel=3).rows)
            if got != expected:
                failures.append(len(got))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not failures


def test_parallel_scan_rejects_non_scan_pipelines():
    relation = Relation(["a"], [(i,) for i in range(10)])
    db = Database({"t": relation})
    physical = db._cached_physical(
        Select(db.scan("t"), col("a") < lit(5)), True, False, False, fuse=False
    )[0]
    with pytest.raises(ValueError):
        ParallelScan(physical, 2)  # a Filter, not a (fused) base scan
