"""Tests for the planner's pipeline fuser and the compile cache.

The fuser must collapse scan→filter→project chains into ``Fused
Pipeline`` nodes and fold the standalone ``Project`` operators that
bracket partition merges into the join emits — EXPLAIN of a fused
translated plan shows no ``Project`` nodes at all.  The compile cache must
make the second execution of a query structurally free of codegen.
"""

from __future__ import annotations

from repro.core import UDatabase, execute_query
from repro.core.query import Poss, Rel, UJoin, UProject, USelect
from repro.relational import Relation
from repro.relational.algebra import Join, Project, Rename, Scan, Select
from repro.relational.expressions import (
    col,
    compile_cache_stats,
    lit,
    reset_compile_cache,
)
from repro.relational.explain import explain, explain_analyze
from repro.relational.physical import FusedPipeline, HashJoin, execute
from repro.relational.planner import plan_physical


def small_udb() -> UDatabase:
    orders = Relation(
        ["orderkey", "orderdate", "custkey"],
        [(i, 19950000 + i % 30, i % 10) for i in range(60)],
    )
    customer = Relation(
        ["custkey", "mktsegment"],
        [(i, "BUILDING" if i % 3 == 0 else "AUTO") for i in range(10)],
    )
    return UDatabase.from_certain({"orders": orders, "customer": customer})


def query():
    o = USelect(Rel("orders", "o"), col("o.orderdate") > lit(19950010))
    c = USelect(Rel("customer", "c"), col("c.mktsegment").eq(lit("BUILDING")))
    joined = UJoin(c, o, col("c.custkey").eq(col("o.custkey")))
    return Poss(UProject(joined, ["o.orderkey", "o.orderdate"]))


class TestFusion:
    def test_scan_filter_project_chain_fuses(self):
        rel = Relation(["a", "b", "c"], [(i, i * 2, i * 3) for i in range(20)])
        plan = Project(Select(Scan(rel, "t"), col("a") > lit(5)), ["c", "a"])
        fused = plan_physical(plan, use_indexes=False, fuse=True)
        assert isinstance(fused, FusedPipeline)
        assert execute(fused, mode="columns") == execute(
            plan_physical(plan, use_indexes=False), mode="rows"
        )
        text = explain(fused)
        assert "Fused Pipeline" in text
        assert "Project" not in text

    def test_fusion_reaches_through_renames(self):
        rel = Relation(["a", "b"], [(i, i % 4) for i in range(10)])
        plan = Project(
            Select(Rename(Scan(rel, "t"), {"a": "x.a"}), col("x.a") > lit(2)),
            ["x.a"],
        )
        fused = plan_physical(plan, use_indexes=False, fuse=True)
        assert isinstance(fused, FusedPipeline)
        assert fused.schema.names == ["x.a"]
        assert execute(fused, mode="columns") == execute(
            plan_physical(plan, use_indexes=False), mode="rows"
        )

    def test_projection_folds_into_join(self):
        r = Relation(["r.a", "r.b"], [(i % 3, i) for i in range(9)])
        s = Relation(["s.c", "s.d"], [(i % 3, i * 10) for i in range(6)])
        plan = Project(
            Join(Scan(r, "r"), Scan(s, "s"), col("r.a").eq(col("s.c"))),
            ["s.d", "r.b"],
        )
        fused = plan_physical(plan, use_indexes=False, fuse=True)
        assert isinstance(fused, HashJoin)
        assert fused.output_positions == [3, 1]
        assert fused.schema.names == ["s.d", "r.b"]
        assert "Output: s.d, r.b" in explain(fused)

    def test_translated_plan_has_no_standalone_projects(self):
        """The inter-merge Projects disappear into the join emits."""
        udb = small_udb()
        from repro.core.translate import translate
        from repro.relational.algebra import Distinct
        from repro.relational.optimizer import optimize

        inner = translate(query().child, udb)
        plan = optimize(Distinct(Project(inner.plan, list(inner.value_names))))
        unfused = plan_physical(plan, use_indexes=True, fuse=False)
        fused = plan_physical(plan, use_indexes=True, fuse=True)
        assert "Project" in explain(unfused)  # the baseline tree has them
        text = explain(fused)
        assert "Project" not in text.replace("Fused Pipeline", "")
        assert execute(fused, mode="columns") == execute(unfused, mode="rows")

    def test_explain_analyze_reports_per_pipeline_counts(self):
        rel = Relation(["a", "b"], [(i, i) for i in range(10)])
        plan = Project(Select(Scan(rel, "t"), col("a") > lit(4)), ["b"])
        fused = plan_physical(plan, use_indexes=False, fuse=True)
        result, text = explain_analyze(fused, mode="columns")
        assert len(result) == 5
        first = text.splitlines()[0]
        assert "Fused Pipeline" in first and "actual rows=5" in first


class TestCompileCache:
    def test_second_execution_pays_no_codegen(self):
        udb = small_udb()
        reset_compile_cache()
        execute_query(query(), udb)
        first = compile_cache_stats()
        assert first["misses"] > 0  # the first run had to generate code
        execute_query(query(), udb)
        second = compile_cache_stats()
        assert second["misses"] == first["misses"]  # all hits on run two
        assert second["hits"] > first["hits"]

    def test_cache_distinguishes_schemas(self):
        from repro.relational.expressions import compile_expression
        from repro.relational.schema import Schema

        predicate = col("a") > lit(1)
        one = compile_expression(predicate, Schema(["a", "b"]))
        other = compile_expression(predicate, Schema(["b", "a"]))
        assert one((0, 5)) is False and other((5, 0)) is False
        assert one((2, 0)) is True and other((0, 2)) is True

    def test_cache_distinguishes_literal_types(self):
        from repro.relational.expressions import compile_expression
        from repro.relational.schema import Schema

        schema = Schema(["a"])
        as_int = compile_expression(col("a").eq(lit(1)), schema)
        as_bool = compile_expression(col("a").eq(lit(True)), schema)
        assert as_int is not as_bool
