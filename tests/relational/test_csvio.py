"""Tests for CSV import/export."""

import datetime

import pytest

from repro.relational.csvio import read_csv, write_csv
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import DataType, Date


@pytest.fixture
def relation():
    return Relation(
        ["k", "name", "price", "when", "note"],
        [
            (1, "widget", 9.99, Date("1995-03-15"), "plain"),
            (2, "gadget, deluxe", 0.5, Date("2000-01-01"), None),
            (3, 'quo"ted', 100.0, Date("1992-12-31"), "with 'quotes'"),
        ],
    )


class TestRoundTrip:
    def test_typed_roundtrip(self, relation, tmp_path):
        path = tmp_path / "r.csv"
        write_csv(relation, path)
        back = read_csv(path)
        assert back.schema.names == relation.schema.names
        assert back.rows == relation.rows

    def test_types_preserved(self, relation, tmp_path):
        path = tmp_path / "r.csv"
        write_csv(relation, path)
        back = read_csv(path)
        row = back.rows[0]
        assert isinstance(row[0], int)
        assert isinstance(row[2], float)
        assert isinstance(row[3], datetime.date)

    def test_null_distinct_from_empty_string(self, tmp_path):
        r = Relation(["a"], [(None,), ("",), ("x",)])
        path = tmp_path / "n.csv"
        write_csv(r, path)
        back = read_csv(path)
        assert back.rows == [(None,), ("",), ("x",)]

    def test_commas_and_quotes_survive(self, relation, tmp_path):
        path = tmp_path / "q.csv"
        write_csv(relation, path)
        back = read_csv(path)
        assert back.rows[1][1] == "gadget, deluxe"
        assert back.rows[2][1] == 'quo"ted'

    def test_empty_relation(self, tmp_path):
        r = Relation(["a", "b"], [])
        path = tmp_path / "e.csv"
        write_csv(r, path)
        back = read_csv(path)
        assert back.schema.names == ["a", "b"]
        assert len(back) == 0


class TestPlainHeaders:
    def test_inference_from_data(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("k,price,when,label\n1,9.5,1995-03-15,abc\n2,0.5,2000-01-01,def\n")
        back = read_csv(path)
        assert back.rows[0] == (1, 9.5, datetime.date(1995, 3, 15), "abc")

    def test_explicit_schema_wins(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("a,b\n1,2\n")
        schema = Schema([Attribute("a", DataType.STR), Attribute("b", DataType.INT)])
        back = read_csv(path, schema=schema)
        assert back.rows == [("1", 2)]

    def test_header_schema_arity_mismatch(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="columns"):
            read_csv(path, schema=Schema(["only"]))


class TestErrors:
    def test_mixed_type_column_rejected(self, tmp_path):
        r = Relation(["a"], [(1,), ("text",)])
        with pytest.raises(ValueError, match="mixes"):
            write_csv(r, tmp_path / "mixed.csv")

    def test_int_float_mix_promotes(self, tmp_path):
        r = Relation(["a"], [(1,), (2.5,)])
        path = tmp_path / "nums.csv"
        write_csv(r, path)
        back = read_csv(path)
        assert back.rows == [(1.0,), (2.5,)]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a:int,b:int\n1,2\n3\n")
        with pytest.raises(ValueError, match="arity"):
            read_csv(path)
