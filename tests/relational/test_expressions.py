"""Tests for the scalar expression AST: evaluation, NULLs, analysis."""

import pytest

from repro.relational.expressions import (
    And,
    Between,
    Col,
    Comparison,
    FALSE,
    InList,
    IsNull,
    Lit,
    Not,
    Or,
    TRUE,
    col,
    conjunction,
    disjunction,
    equijoin_pairs,
    lit,
    split_conjuncts,
)
from repro.relational.schema import Schema
from repro.relational.types import Date

S = Schema(["a", "b", "c"])


def ev(expr, row):
    return expr.bind(S)(row)


class TestBasics:
    def test_col(self):
        assert ev(col("b"), (1, 2, 3)) == 2

    def test_lit(self):
        assert ev(lit(42), (0, 0, 0)) == 42

    def test_comparisons(self):
        assert ev(col("a") < lit(5), (3, 0, 0))
        assert not ev(col("a") < lit(5), (7, 0, 0))
        assert ev(col("a") >= lit(3), (3, 0, 0))
        assert ev(col("a").eq(col("b")), (4, 4, 0))
        assert ev(col("a").ne(col("b")), (4, 5, 0))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("~~", lit(1), lit(2))

    def test_date_comparisons(self):
        assert ev(col("a") > lit(Date("1995-03-15")), (Date("1995-06-01"), 0, 0))

    def test_arithmetic(self):
        assert ev(col("a") + col("b"), (1, 2, 0)) == 3
        assert ev(col("a") * lit(3), (4, 0, 0)) == 12
        assert ev(col("a") - lit(1), (4, 0, 0)) == 3


class TestNullSemantics:
    def test_comparison_with_null_is_false(self):
        assert not ev(col("a").eq(lit(1)), (None, 0, 0))
        assert not ev(col("a") < lit(1), (None, 0, 0))
        assert not ev(col("a").ne(lit(1)), (None, 0, 0))

    def test_arithmetic_propagates_null(self):
        assert ev(col("a") + lit(1), (None, 0, 0)) is None

    def test_is_null(self):
        assert ev(col("a").is_null(), (None, 0, 0))
        assert not ev(col("a").is_null(), (1, 0, 0))

    def test_between_rejects_null(self):
        assert not ev(col("a").between(1, 5), (None, 0, 0))


class TestConnectives:
    def test_and_flattens(self):
        e = And(And(TRUE, TRUE), TRUE)
        assert len(e.operands) == 3

    def test_or_flattens(self):
        e = Or(Or(FALSE, FALSE), TRUE)
        assert len(e.operands) == 3

    def test_and_evaluation(self):
        e = (col("a") > lit(0)) & (col("b") > lit(0))
        assert ev(e, (1, 1, 0))
        assert not ev(e, (1, -1, 0))

    def test_or_evaluation(self):
        e = (col("a") > lit(0)) | (col("b") > lit(0))
        assert ev(e, (-1, 1, 0))
        assert not ev(e, (-1, -1, 0))

    def test_not(self):
        assert ev(~(col("a") > lit(0)), (-1, 0, 0))

    def test_between(self):
        e = col("a").between(2, 4)
        assert ev(e, (3, 0, 0))
        assert ev(e, (2, 0, 0)) and ev(e, (4, 0, 0))  # inclusive
        assert not ev(e, (5, 0, 0))

    def test_in_list(self):
        e = col("a").in_list([1, 3])
        assert ev(e, (3, 0, 0))
        assert not ev(e, (2, 0, 0))

    def test_conjunction_empty_is_true(self):
        assert ev(conjunction([]), (0, 0, 0))

    def test_disjunction_empty_is_false(self):
        assert not ev(disjunction([]), (0, 0, 0))

    def test_conjunction_singleton_passthrough(self):
        e = col("a") > lit(0)
        assert conjunction([e]) is e


class TestAnalysis:
    def test_columns(self):
        e = (col("a") > lit(1)) & (col("b").eq(col("c")))
        assert e.columns() == frozenset({"a", "b", "c"})

    def test_split_conjuncts(self):
        e = (col("a") > lit(1)) & (col("b") > lit(2)) & (col("c") > lit(3))
        assert len(split_conjuncts(e)) == 3

    def test_split_non_and_is_singleton(self):
        e = col("a") > lit(1)
        assert split_conjuncts(e) == [e]

    def test_flipped(self):
        e = Comparison("<", col("a"), col("b")).flipped()
        assert e.op == ">" and e.left.name == "b"


class TestEquijoinPairs:
    def test_simple_pair(self):
        left, right = Schema(["l.k", "l.v"]), Schema(["r.k", "r.v"])
        pred = col("l.k").eq(col("r.k"))
        pairs, residual = equijoin_pairs(pred, left, right)
        assert pairs == [("l.k", "r.k")]
        assert residual == []

    def test_pair_flipped_operands(self):
        left, right = Schema(["l.k"]), Schema(["r.k"])
        pred = col("r.k").eq(col("l.k"))
        pairs, _ = equijoin_pairs(pred, left, right)
        assert pairs == [("l.k", "r.k")]

    def test_residual_kept(self):
        left, right = Schema(["l.k", "l.v"]), Schema(["r.k", "r.v"])
        pred = col("l.k").eq(col("r.k")) & (col("l.v") < col("r.v"))
        pairs, residual = equijoin_pairs(pred, left, right)
        assert len(pairs) == 1 and len(residual) == 1

    def test_non_equi_all_residual(self):
        left, right = Schema(["l.k"]), Schema(["r.k"])
        pred = col("l.k") < col("r.k")
        pairs, residual = equijoin_pairs(pred, left, right)
        assert pairs == [] and len(residual) == 1

    def test_same_side_equality_is_residual(self):
        left, right = Schema(["l.a", "l.b"]), Schema(["r.a"])
        pred = col("l.a").eq(col("l.b"))
        pairs, residual = equijoin_pairs(pred, left, right)
        assert pairs == [] and len(residual) == 1


class TestRepr:
    def test_reprs_are_readable(self):
        e = (col("a").eq(lit("x"))) & (col("b") > lit(1))
        text = repr(e)
        assert "a" in text and "'x'" in text and "AND" in text
