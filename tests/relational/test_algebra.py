"""Tests for logical plan nodes: schema computation and validation."""

import pytest

from repro.relational.algebra import (
    Difference,
    Distinct,
    Extend,
    Join,
    Product,
    Project,
    ProjectAs,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relational.expressions import col, lit
from repro.relational.relation import Relation
from repro.relational.schema import SchemaError, UnknownColumnError


@pytest.fixture
def r_scan():
    return Scan(Relation(["a", "b"], [(1, "x")]), name="r")


@pytest.fixture
def s_scan():
    return Scan(Relation(["c", "d"], [(2, "y")]), name="s")


class TestSchemas:
    def test_scan_schema(self, r_scan):
        assert r_scan.schema.names == ["a", "b"]

    def test_scan_alias_qualifies(self):
        scan = Scan(Relation(["a"], []), name="r", alias="t")
        assert scan.schema.names == ["t.a"]

    def test_select_preserves_schema(self, r_scan):
        assert Select(r_scan, col("a") > lit(0)).schema.names == ["a", "b"]

    def test_select_validates_columns_eagerly(self, r_scan):
        with pytest.raises(UnknownColumnError):
            Select(r_scan, col("zzz") > lit(0))

    def test_project_schema(self, r_scan):
        assert Project(r_scan, ["b"]).schema.names == ["b"]

    def test_project_as_schema(self, r_scan):
        node = ProjectAs(r_scan, [("a", "x1"), ("a", "x2")])
        assert node.schema.names == ["x1", "x2"]

    def test_extend_schema(self, r_scan):
        node = Extend(r_scan, [("z", lit(0))])
        assert node.schema.names == ["a", "b", "z"]

    def test_join_schema_concat(self, r_scan, s_scan):
        node = Join(r_scan, s_scan, col("a").eq(col("c")))
        assert node.schema.names == ["a", "b", "c", "d"]

    def test_join_validates_predicate(self, r_scan, s_scan):
        with pytest.raises(UnknownColumnError):
            Join(r_scan, s_scan, col("nope").eq(col("c")))

    def test_product_schema(self, r_scan, s_scan):
        assert Product(r_scan, s_scan).schema.names == ["a", "b", "c", "d"]

    def test_union_arity_checked(self, r_scan):
        with pytest.raises(SchemaError):
            Union(r_scan, Scan(Relation(["x"], []), "t"))

    def test_union_takes_left_names(self, r_scan):
        other = Scan(Relation(["p", "q"], []), "t")
        assert Union(r_scan, other).schema.names == ["a", "b"]

    def test_difference_arity_checked(self, r_scan):
        with pytest.raises(SchemaError):
            Difference(r_scan, Scan(Relation(["x"], []), "t"))

    def test_distinct_preserves(self, r_scan):
        assert Distinct(r_scan).schema.names == ["a", "b"]

    def test_rename_schema(self, r_scan):
        assert Rename(r_scan, {"a": "z"}).schema.names == ["z", "b"]


class TestTreeStructure:
    def test_children(self, r_scan, s_scan):
        join = Join(r_scan, s_scan, col("a").eq(col("c")))
        assert join.children == (r_scan, s_scan)
        assert r_scan.children == ()

    def test_with_children_rebuilds(self, r_scan, s_scan):
        join = Join(r_scan, s_scan, col("a").eq(col("c")))
        swapped = join.with_children([s_scan, r_scan])
        assert swapped.schema.names == ["c", "d", "a", "b"]

    def test_scan_with_children_rejects(self, r_scan):
        with pytest.raises(ValueError):
            r_scan.with_children([r_scan])

    def test_node_labels(self, r_scan):
        assert "Seq Scan" in r_scan.node_label()
        assert "Filter" in Select(r_scan, col("a") > lit(0)).node_label()
        assert "Project" in Project(r_scan, ["a"]).node_label()
