"""Tests for the prepared-plan cache at the relational (Database) level.

Three families:

* mechanics — hit/miss/stats accounting, ``(cached)`` EXPLAIN marking,
  catalog versioning on every Database mutation;
* invalidation — each catalog mutation evicts exactly the dependent
  entries (unrelated cached plans survive and keep hitting);
* property tests (hypothesis) — cached-plan execution is tuple-identical
  to fresh-plan execution across all three modes, batch sizes
  {0, 1, 1023, 1024, 1025}, ``use_indexes`` on/off, and fused/unfused
  plans, mirroring ``test_columnar.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import (
    Database,
    Relation,
    col,
    lit,
    plan_cache_stats,
    reset_plan_cache,
)
from repro.relational.algebra import (
    Distinct,
    Join,
    Product,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relational.index import ensure_index
from repro.relational.optimizer import optimize
from repro.relational.plancache import (
    bump_relation,
    cache_contains,
    logical_plan_key,
    plan_relations,
    relation_epoch,
)
from repro.relational.planner import plan_physical
from repro.relational.physical import execute


def make_db():
    db = Database()
    db.create("r", Relation(["r.a", "r.b"], [(i % 5, i) for i in range(40)]))
    db.create("s", Relation(["s.c", "s.d"], [(i % 7, -i) for i in range(30)]))
    return db


def query(db):
    return Project(
        Select(
            Join(db.scan("r"), db.scan("s"), col("r.a").eq(col("s.c"))),
            col("r.b") > lit(3),
        ),
        ["r.b", "s.d"],
    )


class TestMechanics:
    def test_second_run_hits_and_matches(self):
        db = make_db()
        plan = query(db)
        first = db.run(plan)
        stats = plan_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0 and stats["size"] == 1
        second = db.run(plan)
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert first == second

    def test_structurally_equal_plans_share_one_entry(self):
        db = make_db()
        db.run(query(db))
        db.run(query(db))  # a *new* but structurally identical tree
        stats = plan_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_modes_share_or_split_entries_correctly(self):
        db = make_db()
        plan = query(db)
        db.run(plan, mode="columns")
        db.run(plan, mode="blocks")  # unfused: a separate plan
        db.run(plan, mode="rows")  # shares the unfused blocks plan
        stats = plan_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 1

    def test_knobs_key_separately(self):
        db = make_db()
        plan = query(db)
        db.run(plan)
        db.run(plan, use_indexes=False)
        db.run(plan, prefer_merge_join=True)
        db.run(plan, optimize_first=False)
        assert plan_cache_stats()["misses"] == 4
        # and each repeated combination hits
        db.run(plan, use_indexes=False)
        db.run(plan, prefer_merge_join=True)
        assert plan_cache_stats()["hits"] == 2

    def test_explain_marks_cached(self):
        db = make_db()
        plan = query(db)
        cold = db.explain(plan)
        assert "(cached)" not in cold
        warm = db.explain(plan)
        assert warm.splitlines()[0].endswith("(cached)")
        # explain inserted the plan: running now skips planning
        before = plan_cache_stats()["misses"]
        db.run(plan)
        assert plan_cache_stats()["misses"] == before

    def test_explain_analyze_on_cached_plan(self):
        db = make_db()
        plan = query(db)
        db.run(plan)
        text = db.explain(plan, analyze=True)
        assert "(cached)" in text.splitlines()[0]
        assert "actual rows=" in text

    def test_reset_clears_entries_and_counters(self):
        db = make_db()
        db.run(query(db))
        reset_plan_cache()
        stats = plan_cache_stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "evictions": 0,
            "pinned": 0,
            "size": 0,
        }

    def test_logical_plan_key_distinguishes_structure(self):
        db = make_db()
        r = db.scan("r")
        base = Select(r, col("r.a").eq(lit(1)))
        other = Select(r, col("r.a").eq(lit(2)))
        assert logical_plan_key(base) != logical_plan_key(other)
        assert logical_plan_key(base) == logical_plan_key(
            Select(db.scan("r"), col("r.a").eq(lit(1)))
        )

    def test_plan_relations_collects_all_leaves(self):
        db = make_db()
        deps = plan_relations(query(db))
        assert db.get("r") in deps and db.get("s") in deps


class TestInvalidation:
    """Database-level mutations evict exactly the dependent entries."""

    def setup_entries(self, db):
        """Cache one plan over r and one over s; return their plans."""
        over_r = Select(db.scan("r"), col("r.a").eq(lit(1)))
        over_s = Select(db.scan("s"), col("s.c").eq(lit(1)))
        db.run(over_r)
        db.run(over_s)
        assert plan_cache_stats()["size"] == 2
        return over_r, over_s

    def assert_exactly_r_evicted(self, db, over_r, over_s):
        stats = plan_cache_stats()
        assert stats["invalidations"] >= 1
        assert stats["size"] == 1  # the s entry survived
        hits = stats["hits"]
        db.run(over_s)
        assert plan_cache_stats()["hits"] == hits + 1  # s still cached
        misses = plan_cache_stats()["misses"]
        result = db.run(over_r)  # r re-plans against the new catalog
        assert plan_cache_stats()["misses"] == misses + 1
        return result

    def test_create_replace_bumps_and_evicts(self):
        db = make_db()
        over_r, over_s = self.setup_entries(db)
        old_rows = list(db.get("r").rows)
        version = db.catalog_version
        replacement = Relation(["r.a", "r.b"], [(1, 100), (2, 200)])
        db.create("r", replacement, replace=True)
        assert db.catalog_version > version
        # the old plan object still scans the old (immutable) relation —
        # re-planning it is sound, just no longer cached
        result = self.assert_exactly_r_evicted(db, over_r, over_s)
        assert sorted(result.rows) == sorted(r for r in old_rows if r[0] == 1)
        # a plan built from the *current* catalog reads the replacement
        fresh = Select(db.scan("r"), col("r.a").eq(lit(1)))
        assert sorted(db.run(fresh).rows) == [(1, 100)]

    def test_drop_table_bumps_and_evicts(self):
        db = make_db()
        over_r, over_s = self.setup_entries(db)
        version = db.catalog_version
        db.drop("r")
        assert db.catalog_version > version
        stats = plan_cache_stats()
        assert stats["invalidations"] >= 1 and stats["size"] == 1
        db.run(over_s)
        assert plan_cache_stats()["hits"] >= 1

    def test_create_index_bumps_and_evicts(self):
        db = make_db()
        over_r, over_s = self.setup_entries(db)
        version = db.catalog_version
        db.create_index("idx_r_a", "r", ["r.a"], kind="hash")
        assert db.catalog_version > version
        result = self.assert_exactly_r_evicted(db, over_r, over_s)
        # the fresh plan may now use the index; answers are unchanged
        assert sorted(result.rows) == sorted(
            row for row in db.get("r").rows if row[0] == 1
        )
        assert "idx_r_a" in db.explain(over_r)

    def test_drop_index_bumps_and_evicts(self):
        db = make_db()
        db.create_index("idx_r_a", "r", ["r.a"], kind="hash")
        over_r, over_s = self.setup_entries(db)
        assert "idx_r_a" in db.explain(over_r)
        version = db.catalog_version
        db.drop_index("idx_r_a")
        assert db.catalog_version > version
        result = self.assert_exactly_r_evicted(db, over_r, over_s)
        assert sorted(result.rows) == sorted(
            row for row in db.get("r").rows if row[0] == 1
        )
        assert "idx_r_a" not in db.explain(over_r)

    def test_analyze_bumps_and_evicts(self):
        db = make_db()
        over_r, over_s = self.setup_entries(db)
        version = db.catalog_version
        db.analyze("r")
        assert db.catalog_version > version
        self.assert_exactly_r_evicted(db, over_r, over_s)

    def test_stale_plan_execution_is_impossible(self):
        """The end-to-end guarantee: after any replacement, the next run
        sees the new data — no interleaving can observe the old plan."""
        db = make_db()
        plan = Select(db.scan("r"), col("r.a").eq(lit(1)))
        db.run(plan)
        for fill in ([(1, -1)], [(1, -2), (1, -3)], []):
            db.create("r", Relation(["r.a", "r.b"], fill), replace=True)
            # plan embeds the *old* relation object: re-build the scan from
            # the current catalog, as any caller holding the Database would
            fresh = Select(db.scan("r"), col("r.a").eq(lit(1)))
            assert sorted(db.run(fresh).rows) == sorted(fill)

    def test_epoch_bump_is_per_relation(self):
        r = Relation(["a"], [(1,)])
        s = Relation(["b"], [(2,)])
        before_r, before_s = relation_epoch(r), relation_epoch(s)
        bump_relation(r)
        assert relation_epoch(r) == before_r + 1
        assert relation_epoch(s) == before_s

    def test_lazy_index_build_during_planning_is_self_consistent(self):
        """A deferred index that materializes *during* a miss's planning
        must not invalidate the entry being inserted."""
        from repro.relational.index import defer_index

        relation = Relation(["r.a", "r.b"], [(i % 3, i) for i in range(20)])
        defer_index(relation, ["r.a"], kind="hash")
        db = Database()
        db.create("r", relation)
        plan = Select(db.scan("r"), col("r.a").eq(lit(1)))
        db.run(plan)  # planning builds the deferred index, then caches
        before = plan_cache_stats()["hits"]
        db.run(plan)
        assert plan_cache_stats()["hits"] == before + 1


# ----------------------------------------------------------------------
# property tests: cached == fresh, all modes x batch sizes x knobs
# ----------------------------------------------------------------------
values = st.one_of(st.integers(min_value=0, max_value=9), st.none())
rows_r = st.lists(st.tuples(values, values), min_size=0, max_size=30)
rows_s = st.lists(st.tuples(values, values), min_size=0, max_size=30)
batch_sizes = st.sampled_from([0, 1, 1023, 1024, 1025])


@st.composite
def predicates(draw, columns):
    column = col(draw(st.sampled_from(columns)))
    kind = draw(st.sampled_from(["eq", "lt", "gt", "between", "in", "isnull"]))
    v = draw(st.integers(min_value=0, max_value=9))
    if kind == "eq":
        return column.eq(lit(v))
    if kind == "lt":
        return column < lit(v)
    if kind == "gt":
        return column > lit(v)
    if kind == "between":
        lo = draw(st.integers(min_value=0, max_value=9))
        return column.between(min(lo, v), max(lo, v))
    if kind == "in":
        return column.in_list([v, (v + 3) % 10])
    return column.is_null()


@st.composite
def plans(draw):
    r = Relation(["r.a", "r.b"], draw(rows_r))
    s = Relation(["s.c", "s.d"], draw(rows_s))
    for rel, names in ((r, ["r.a", "r.b"]), (s, ["s.c", "s.d"])):
        for name in names:
            ensure_index(rel, [name], kind="hash")
            ensure_index(rel, [name], kind="sorted")
    r_scan, s_scan = Scan(r, "r"), Scan(s, "s")
    shape = draw(
        st.sampled_from(
            ["select", "project_select", "rename_select", "join", "join_select",
             "distinct", "product", "union"]
        )
    )
    if shape == "select":
        return Select(r_scan, draw(predicates(["r.a", "r.b"])))
    if shape == "project_select":
        return Project(Select(r_scan, draw(predicates(["r.a", "r.b"]))), ["r.b", "r.a"])
    if shape == "rename_select":
        renamed = Rename(r_scan, {"r.a": "x.a"})
        return Project(Select(renamed, draw(predicates(["x.a", "r.b"]))), ["x.a"])
    join = Join(
        Select(r_scan, draw(predicates(["r.a", "r.b"]))),
        s_scan,
        col("r.a").eq(col("s.c")),
    )
    if shape == "join":
        return join
    if shape == "join_select":
        return Select(join, draw(predicates(["r.b", "s.d"])))
    if shape == "distinct":
        return Distinct(Project(Select(r_scan, draw(predicates(["r.a"]))), ["r.b"]))
    if shape == "product":
        return Select(Product(r_scan, s_scan), draw(predicates(["r.a", "s.d"])))
    return Union(Project(r_scan, ["r.a"]), Project(s_scan, ["s.c"]))


def bag(relation: Relation):
    return sorted(map(repr, relation.rows))


@given(plans(), batch_sizes, st.booleans(), st.sampled_from(["rows", "blocks", "columns"]))
@settings(max_examples=120, deadline=None)
def test_cached_equals_fresh(plan, batch_size, use_indexes, mode):
    """A plan served from the cache produces the same tuples a fresh
    compilation does — across modes, batch sizes, and index knobs, and on
    repeated executions of the same cached tree."""
    fuse = mode == "columns"
    fresh = execute(
        plan_physical(optimize(plan), use_indexes=use_indexes, fuse=fuse),
        mode=mode,
        batch_size=batch_size,
    )
    db = Database()
    cold = db.run(plan, mode=mode, batch_size=batch_size, use_indexes=use_indexes)
    warm = db.run(plan, mode=mode, batch_size=batch_size, use_indexes=use_indexes)
    warm_again = db.run(plan, mode=mode, batch_size=batch_size, use_indexes=use_indexes)
    assert bag(cold) == bag(fresh)
    assert bag(warm) == bag(fresh)
    assert bag(warm_again) == bag(fresh)
    assert warm.schema.names == fresh.schema.names
    assert cache_contains(
        ("db-run", id(db), logical_plan_key(plan), True, False, use_indexes, fuse, 0)
    )


@given(plans(), batch_sizes, st.booleans())
@settings(max_examples=40, deadline=None)
def test_cached_plan_shared_across_batch_sizes(plan, batch_size, use_indexes):
    """Batch size is an execution knob, not a plan knob: one cached entry
    serves every batch size with identical answers."""
    db = Database()
    reference = db.run(plan, batch_size=1024, use_indexes=use_indexes)
    misses = plan_cache_stats()["misses"]
    other = db.run(plan, batch_size=batch_size, use_indexes=use_indexes)
    assert plan_cache_stats()["misses"] == misses
    assert bag(other) == bag(reference)
