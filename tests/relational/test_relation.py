"""Tests for the Relation container and its derived operations."""

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Schema, SchemaError


@pytest.fixture
def r():
    return Relation(["a", "b"], [(1, "x"), (2, "y"), (3, "x")])


class TestConstruction:
    def test_from_rows(self, r):
        assert len(r) == 3
        assert r.schema.names == ["a", "b"]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(["a"], [(1, 2)])

    def test_from_dicts(self):
        r = Relation.from_dicts(["a", "b"], [{"a": 1, "b": 2}, {"a": 3}])
        assert r.rows == [(1, 2), (3, None)]

    def test_empty(self):
        r = Relation.empty(["a"])
        assert len(r) == 0
        assert not r


class TestDerivedOperations:
    def test_column(self, r):
        assert r.column("b") == ["x", "y", "x"]

    def test_project_keeps_duplicates(self, r):
        p = r.project(["b"])
        assert p.rows == [("x",), ("y",), ("x",)]

    def test_select(self, r):
        s = r.select(lambda row: row[0] > 1)
        assert s.rows == [(2, "y"), (3, "x")]

    def test_distinct_preserves_order(self):
        r = Relation(["a"], [(2,), (1,), (2,), (1,)])
        assert r.distinct().rows == [(2,), (1,)]

    def test_union(self, r):
        u = r.union(Relation(["a", "b"], [(9, "z")]))
        assert len(u) == 4

    def test_union_arity_mismatch(self, r):
        with pytest.raises(SchemaError):
            r.union(Relation(["a"], [(1,)]))

    def test_difference(self, r):
        d = r.difference(Relation(["a", "b"], [(1, "x")]))
        assert d.rows == [(2, "y"), (3, "x")]

    def test_product(self):
        a = Relation(["a"], [(1,), (2,)])
        b = Relation(["b"], [("x",)])
        p = a.product(b)
        assert p.schema.names == ["a", "b"]
        assert p.rows == [(1, "x"), (2, "x")]

    def test_rename(self, r):
        renamed = r.rename({"a": "z"})
        assert renamed.schema.names == ["z", "b"]
        assert renamed.rows == r.rows

    def test_qualify(self, r):
        q = r.qualify("t")
        assert q.schema.names == ["t.a", "t.b"]

    def test_sorted_all_columns(self):
        r = Relation(["a"], [(3,), (1,), (2,)])
        assert r.sorted().rows == [(1,), (2,), (3,)]

    def test_sorted_by_column(self):
        r = Relation(["a", "b"], [(1, "z"), (2, "a")])
        assert r.sorted(["b"]).rows == [(2, "a"), (1, "z")]

    def test_sorted_handles_none(self):
        r = Relation(["a"], [(2,), (None,), (1,)])
        assert r.sorted().rows == [(None,), (1,), (2,)]


class TestEquality:
    def test_bag_equality_order_insensitive(self):
        a = Relation(["a"], [(1,), (2,)])
        b = Relation(["a"], [(2,), (1,)])
        assert a == b

    def test_bag_equality_respects_multiplicity(self):
        a = Relation(["a"], [(1,), (1,)])
        b = Relation(["a"], [(1,)])
        assert a != b

    def test_different_schemas_unequal(self):
        assert Relation(["a"], [(1,)]) != Relation(["b"], [(1,)])

    def test_as_set(self):
        assert Relation(["a"], [(1,), (1,)]).as_set() == frozenset({(1,)})


class TestPretty:
    def test_pretty_contains_header_and_rows(self, r):
        out = r.pretty()
        assert "a" in out and "b" in out and "x" in out

    def test_pretty_truncates(self):
        r = Relation(["a"], [(i,) for i in range(50)])
        out = r.pretty(limit=5)
        assert "50 rows total" in out
