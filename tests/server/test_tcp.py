"""End-to-end tests of the TCP line protocol over real sockets."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.server import AdmissionPolicy, QueryServer

from tests.conftest import build_vehicles_udb


class Client:
    """A minimal line-protocol client (one JSON object per line)."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=10)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.file = self.sock.makefile("rwb")

    def rpc(self, **request):
        self.file.write(json.dumps(request).encode("utf-8") + b"\n")
        self.file.flush()
        line = self.file.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def close(self):
        try:
            self.file.write(json.dumps({"op": "close"}).encode("utf-8") + b"\n")
            self.file.flush()
        except OSError:
            pass
        self.sock.close()


@pytest.fixture()
def served():
    udb = build_vehicles_udb()
    server = QueryServer(udb, workers=4)
    handle = server.serve_tcp()
    yield server, handle.address
    handle.close()
    server.close()


def test_ping_query_prepare_execute_stats(served):
    _server, address = served
    client = Client(address)
    try:
        assert client.rpc(op="ping") == {"ok": True, "pong": True}

        answer = client.rpc(
            op="query", sql="possible (select id, faction from r where faction = 'Enemy')"
        )
        assert answer["ok"] and answer["columns"] == ["id", "faction"]
        assert sorted(map(tuple, answer["rows"])) == [
            (2, "Enemy"), (3, "Enemy"), (4, "Enemy"),
        ]

        prepared = client.rpc(
            op="prepare", name="by_type", sql="possible (select id from r where type = $1)"
        )
        assert prepared == {"ok": True, "prepared": "by_type", "parameters": 1}
        tanks = client.rpc(op="execute", name="by_type", params=["Tank"])
        assert sorted(row[0] for row in tanks["rows"]) == [1, 2, 3, 4]
        transports = client.rpc(op="execute", name="by_type", params=["Transport"])
        assert sorted(row[0] for row in transports["rows"]) == [2, 3, 4]

        stats = client.rpc(op="stats")
        assert stats["ok"] and "admission" in stats["stats"]
    finally:
        client.close()


def test_errors_keep_the_connection_alive(served):
    _server, address = served
    client = Client(address)
    try:
        bad = client.rpc(op="query", sql="select broken syntax from")
        assert bad["ok"] is False and bad["kind"] == "error"
        unknown = client.rpc(op="frobnicate")
        assert unknown["ok"] is False
        missing = client.rpc(op="execute", name="never-prepared")
        assert missing["ok"] is False
        # the session survives all three failures
        assert client.rpc(op="ping")["ok"]
    finally:
        client.close()


def test_ddl_over_tcp_returns_an_ack_not_a_table(served):
    """CREATE INDEX must answer with a DDL acknowledgment — not dump the
    indexed relation's rows (Index objects carry a .relation too)."""
    server, address = served
    server.udb.to_database()
    client = Client(address)
    try:
        created = client.rpc(op="query", sql="create index i_tcp on w (var) using sorted")
        assert created["ok"] is True
        assert "rows" not in created and "urelation" not in created
        assert created["result"]  # the index description string
        dropped = client.rpc(op="query", sql="drop index i_tcp")
        assert dropped == {"ok": True, "result": None}
    finally:
        client.close()


def test_sessions_are_per_connection(served):
    _server, address = served
    first = Client(address)
    second = Client(address)
    try:
        first.rpc(op="prepare", name="q", sql="possible (select id from r)")
        assert first.rpc(op="execute", name="q")["ok"]
        # the second connection has its own namespace: no statement "q"
        assert second.rpc(op="execute", name="q")["ok"] is False
    finally:
        first.close()
        second.close()


def test_concurrent_clients_get_correct_answers(served):
    _server, address = served
    expected = {
        "Tank": [1, 2, 3, 4],
        "Transport": [2, 3, 4],
    }
    errors = []

    def client_loop(binding):
        client = Client(address)
        try:
            client.rpc(
                op="prepare", name="q", sql="possible (select id from r where type = $1)"
            )
            for _ in range(20):
                answer = client.rpc(op="execute", name="q", params=[binding])
                got = sorted(row[0] for row in answer["rows"])
                if not answer["ok"] or got != expected[binding]:
                    errors.append((binding, answer))
        finally:
            client.close()

    threads = [
        threading.Thread(target=client_loop, args=(b,))
        for b in ("Tank", "Transport", "Tank", "Transport")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors


def test_overload_is_a_response_not_a_hang():
    """With a zero-length queue and a one-slot class, concurrent cold
    queries shed: the client receives an overloaded response quickly."""
    udb = build_vehicles_udb()
    policy = AdmissionPolicy(limits={"cold": 1}, queue_limit=0, queue_timeout=0.1)
    server = QueryServer(udb, workers=4, coalesce=False)
    server.admission = type(server.admission)(policy)
    handle = server.serve_tcp()
    release = threading.Event()
    original_execute = server.executor.run

    def slow_run(fn, key=None):
        def wrapped():
            release.wait(timeout=10)
            return fn()

        return original_execute(wrapped, key)

    server.executor.run = slow_run
    try:
        blocker = Client(handle.address)
        shed = Client(handle.address)

        results = {}

        def blocked():
            results["blocked"] = blocker.rpc(
                op="query", sql="possible (select id from r)"
            )

        thread = threading.Thread(target=blocked)
        thread.start()
        import time

        time.sleep(0.2)  # the first query holds the only cold slot
        results["shed"] = shed.rpc(op="query", sql="possible (select type from r)")
        release.set()
        thread.join(timeout=10)
        assert results["shed"]["ok"] is False
        assert results["shed"]["kind"] == "overloaded"
        assert results["blocked"]["ok"] is True
        blocker.close()
        shed.close()
    finally:
        release.set()
        handle.close()
        server.close()


def test_dml_over_tcp(served):
    server, address = served
    client = Client(address)
    try:
        ack = client.rpc(
            op="query", sql="insert into r values (9, {'Tank', 'Jeep'}, 'Friend')"
        )
        assert ack["ok"] and ack["dml"] == "INSERT" and ack["count"] == 1
        assert len(ack["variables"]) == 1 and ack["variables"][0].endswith("_type")

        assert client.rpc(
            op="prepare", name="add", sql="insert into r values ($1, $2, $3)"
        ) == {"ok": True, "prepared": "add", "parameters": 3}
        ack = client.rpc(op="execute", name="add", params=[10, "Tank", "Friend"])
        assert ack == {"ok": True, "dml": "INSERT", "count": 1, "variables": []}

        ack = client.rpc(op="query", sql="update r set faction = 'Enemy' where id = 10")
        assert ack == {"ok": True, "dml": "UPDATE", "count": 1, "variables": []}
        ack = client.rpc(op="query", sql="delete from r where id = 9")
        assert ack == {"ok": True, "dml": "DELETE", "count": 1, "variables": []}

        answer = client.rpc(
            op="query", sql="possible (select id, faction from r where id = 10)"
        )
        assert sorted(map(tuple, answer["rows"])) == [(10, "Enemy")]
        stats = client.rpc(op="stats")["stats"]
        assert stats["admission"]["dml"]["admitted"] == 4
    finally:
        client.close()
