"""End-to-end observability over real TCP: trace, stats, metrics ops.

The acceptance shape for ``{"op": "trace"}``::

    query (sql, cost_class)
      parse      (cached)
      admission  (cost_class, queued)
      execute
        plan     (cached)
        + attrs.operators: per-operator estimated vs actual rows
      render     (rows)
"""

from __future__ import annotations

import pytest

from repro.server import QueryServer

from tests.conftest import build_vehicles_udb
from tests.server.test_tcp import Client

JOIN_SQL = (
    "possible (select r1.id, r2.id from r r1, r r2 "
    "where r1.faction = r2.faction and r1.id < r2.id)"
)


@pytest.fixture()
def served():
    udb = build_vehicles_udb()
    server = QueryServer(udb, workers=4)
    handle = server.serve_tcp()
    yield server, handle.address
    handle.close()
    server.close()


def _child_names(node):
    return [child["name"] for child in node.get("children", ())]


def _find(node, name):
    if node["name"] == name:
        return node
    for child in node.get("children", ()):
        found = _find(child, name)
        if found is not None:
            return found
    return None


def _operator_nodes(node):
    yield node
    for child in node.get("children", ()):
        yield from _operator_nodes(child)


def test_trace_op_returns_full_span_tree(served):
    _server, address = served
    client = Client(address)
    try:
        answer = client.rpc(op="trace", sql=JOIN_SQL)
        assert answer["ok"] and answer["rows"]

        trace = answer["trace"]
        assert trace["name"] == "query"
        assert trace["trace_id"] >= 1
        assert trace["attrs"]["sql"] == JOIN_SQL
        # never seen before -> the admission peek classifies it cold
        assert trace["attrs"]["cost_class"] == "cold"
        assert trace["duration_ms"] > 0

        # the lifecycle, in order, directly under the root
        assert _child_names(trace) == ["parse", "admission", "execute", "render"]

        parse = _find(trace, "parse")
        assert parse["attrs"]["cached"] is False

        admission = _find(trace, "admission")
        assert admission["attrs"] == {"cost_class": "cold", "queued": False}

        execute = _find(trace, "execute")
        # planning happens inside the pool thread yet nests under execute:
        # the contextvar bridge is working
        plan = _find(execute, "plan")
        assert plan is not None and plan["attrs"]["cached"] is False

        operators = execute["attrs"]["operators"]
        assert operators["actual_rows"] == len(answer["rows"])
        nodes = list(_operator_nodes(operators))
        assert len(nodes) > 1  # the plan has real operator structure
        for node in nodes:
            assert node["operator"]
            assert "estimated_rows" in node and "actual_rows" in node
        # operators the executor actually pulled report observed rows
        assert sum(node["actual_rows"] is not None for node in nodes) >= 1

        render = _find(trace, "render")
        assert render["attrs"]["rows"] == len(answer["rows"])
    finally:
        client.close()


def test_trace_op_on_prepared_statement(served):
    _server, address = served
    client = Client(address)
    try:
        client.rpc(op="prepare", name="by_type",
                   sql="possible (select id from r where type = $1)")
        first = client.rpc(op="execute", name="by_type", params=["Tank"])
        assert first["ok"]

        traced = client.rpc(op="trace", name="by_type", params=["Tank"])
        assert traced["ok"]
        assert sorted(r[0] for r in traced["rows"]) == sorted(
            r[0] for r in first["rows"]
        )
        trace = traced["trace"]
        # second run of the same statement: the plan cache serves it, and
        # the admission peek now knows its real class
        assert trace["attrs"]["cost_class"] != "cold"
        plan = _find(trace, "plan")
        assert plan["attrs"]["cached"] is True
        execute = _find(trace, "execute")
        assert execute["attrs"]["operators"]["actual_rows"] == len(traced["rows"])
    finally:
        client.close()


def test_stats_op_reflects_queries_just_run(served):
    _server, address = served
    client = Client(address)
    try:
        for _ in range(4):
            assert client.rpc(op="query", sql=JOIN_SQL)["ok"]
        point = "possible (select id from r where id = 1)"
        assert client.rpc(op="query", sql=point)["ok"]

        stats = client.rpc(op="stats")["stats"]
        assert set(stats) >= {
            "sessions_opened",
            "admission",
            "executor",
            "plan_cache",
            "catalog_version",
            "metrics",
            "segment_log",
            "slow_queries",
        }
        assert stats["sessions_opened"] == 1

        metrics = stats["metrics"]
        queries = metrics["counters"]["queries_total"]
        # the self-join planned once and hit the cache three times; the
        # point lookup planned once (queries_total labels the true class)
        assert queries["cached=false,class=heavy"] == 1
        assert queries["cached=true,class=heavy"] == 3
        assert queries["cached=false,class=point"] == 1

        # query_seconds labels by the admission class: both first-ever
        # runs were "cold", the three repeats were known "heavy"
        latency = metrics["histograms"]["query_seconds"]
        assert latency["class=cold"]["count"] == 2
        heavy = latency["class=heavy"]
        assert heavy["count"] == 3
        assert 0 < heavy["min"] <= heavy["p50"]
        assert heavy["p50"] <= heavy["p95"] <= heavy["p99"]
        assert heavy["p99"] <= heavy["max"]

        # segment health gauges: one entry per vertical partition of r
        segment_log = stats["segment_log"]
        assert set(segment_log) == {"r/part0", "r/part1", "r/part2"}
        for health in segment_log.values():
            assert health["segment_count"] >= 1
            assert health["live_rows"] > 0
            assert 0.0 <= health["deleted_ratio"] <= 1.0

        # the five queries are the five slowest ever seen
        assert len(stats["slow_queries"]) == 5
        assert stats["slow_queries"][0]["duration_ms"] >= stats[
            "slow_queries"
        ][-1]["duration_ms"]
    finally:
        client.close()


def test_metrics_op_returns_prometheus_text(served):
    _server, address = served
    client = Client(address)
    try:
        assert client.rpc(op="query", sql=JOIN_SQL)["ok"]
        answer = client.rpc(op="metrics")
        assert answer["ok"]
        text = answer["metrics"]
        assert "# TYPE queries_total counter" in text
        assert 'queries_total{cached="false",class="heavy"} 1' in text
        assert "# TYPE query_seconds histogram" in text
        assert 'query_seconds_bucket{class="cold",le="+Inf"} 1' in text
    finally:
        client.close()


def test_dml_updates_segment_health_and_counters(served):
    _server, address = served
    client = Client(address)
    try:
        ack = client.rpc(op="query", sql="insert into r values (9, 'Tank', 'Friend')")
        assert ack["ok"] and ack["count"] == 1
        ack = client.rpc(op="query", sql="delete from r where id = 9")
        assert ack["ok"] and ack["count"] == 1

        stats = client.rpc(op="stats")["stats"]
        dml = stats["metrics"]["counters"]["dml_statements_total"]
        assert dml["op=insert"] == 1
        assert dml["op=delete"] == 1

        for health in stats["segment_log"].values():
            # the insert opened a delta segment; the delete tombstoned it
            assert health["segment_count"] >= 2
            assert health["deleted_ratio"] > 0
    finally:
        client.close()
