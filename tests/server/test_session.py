"""Sessions: statement namespaces, private bindings, snapshot reads."""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.server import QueryServer, SnapshotChanged

from tests.conftest import build_vehicles_udb


def bag(relation):
    return Counter(relation.rows)


@pytest.fixture
def udb():
    return build_vehicles_udb()


class TestNamespace:
    def test_named_statements_are_per_session(self, udb):
        a = udb.session()
        b = udb.session()
        a.prepare("q", "possible (select id from r where type = $1)")
        with pytest.raises(KeyError):
            b.statement("q")
        assert a.statement("q").parameter_count == 1

    def test_reprepare_replaces(self, udb):
        session = udb.session()
        session.prepare("q", "possible (select id from r)")
        session.prepare("q", "possible (select type from r)")
        assert session.execute_prepared("q").schema.names == ["type"]

    def test_deallocate(self, udb):
        session = udb.session()
        session.prepare("q", "possible (select id from r)")
        session.deallocate("q")
        with pytest.raises(KeyError):
            session.execute_prepared("q")

    def test_ddl_cannot_be_prepared(self, udb):
        session = udb.session()
        udb.to_database()  # materialize the catalog view
        with pytest.raises(ValueError):
            session.prepare("ddl", "create index i on w (var)")

    def test_execute_routes_ddl(self, udb):
        session = udb.session()
        udb.to_database()
        index = session.execute("create index i_w_var2 on w (var) using sorted")
        assert index is not None
        session.execute("drop index i_w_var2")

    def test_by_text_cache_reuses_statements(self, udb):
        session = udb.session()
        sql = "possible (select id from r)"
        first = session._by_text_statement(sql)
        session.execute(sql)
        assert session._by_text_statement(sql) is first


class TestBindings:
    def test_sessions_do_not_share_binding_stores(self, udb):
        sql = "possible (select id from r where type = $1)"
        a = udb.session()
        b = udb.session()
        stmt_a = a._by_text_statement(sql)
        stmt_b = b._by_text_statement(sql)
        assert stmt_a is not stmt_b
        assert stmt_a._store is not stmt_b._store

    def test_concurrent_sessions_with_different_bindings(self, udb):
        """Two server-bound sessions hammer the same $1 statement with
        different bindings; every answer matches its own binding."""
        server = QueryServer(udb, workers=4)
        sql = "possible (select id, type from r where type = $1)"
        expected = {
            "Tank": bag(udb.session().execute(sql, ["Tank"])),
            "Transport": bag(udb.session().execute(sql, ["Transport"])),
        }
        errors = []

        def client(binding):
            session = server.session()
            for _ in range(30):
                got = bag(session.execute(sql, [binding]))
                if got != expected[binding]:
                    errors.append((binding, got))

        threads = [
            threading.Thread(target=client, args=(b,))
            for b in ("Tank", "Transport", "Tank", "Transport")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        server.close()
        assert not errors


class TestSnapshots:
    def test_snapshot_reads_pass_when_catalog_quiet(self, udb):
        session = udb.session()
        with session.snapshot():
            a = session.execute("possible (select id from r)")
            b = session.execute("possible (select id from r)")
        assert bag(a) == bag(b)

    def test_concurrent_ddl_breaks_the_snapshot(self, udb):
        session = udb.session()
        db = udb.to_database()
        with session.snapshot():
            session.execute("possible (select id from r)")
            # concurrent DDL from elsewhere moves the catalog version
            db.create_index("i_snap", "w", ["var"], kind="sorted")
            with pytest.raises(SnapshotChanged):
                session.execute("possible (select id from r)")
        # outside the snapshot the session reads fine again
        session.execute("possible (select id from r)")
        db.drop_index("i_snap")

    def test_ddl_inside_snapshot_is_rejected(self, udb):
        session = udb.session()
        udb.to_database()
        with session.snapshot():
            with pytest.raises(SnapshotChanged):
                session.execute_ddl("create index i_x on w (var)")

    def test_snapshots_do_not_nest(self, udb):
        session = udb.session()
        with session.snapshot():
            with pytest.raises(RuntimeError):
                with session.snapshot():
                    pass  # pragma: no cover


class TestServerFacade:
    def test_server_query_and_stats(self, udb):
        with QueryServer(udb, workers=2) as server:
            first = server.query("possible (select id from r where faction = 'Enemy')")
            second = server.query("possible (select id from r where faction = 'Enemy')")
            assert bag(first) == bag(second)
            stats = server.stats()
            assert stats["sessions_opened"] >= 1
            assert stats["executor"]["executed"] >= 2
            assert "cold" in stats["admission"]

    def test_repeated_queries_reclassify_from_the_cache(self, udb):
        with QueryServer(udb, workers=2) as server:
            session = server.session()
            sql = "possible (select id from r where type = 'Tank')"
            session.execute(sql)  # cold: plans and caches
            session.execute(sql)  # classified by the cached entry now
            admission = server.stats()["admission"]
            cached_classes = set(admission) - {"cold"}
            assert admission["cold"]["admitted"] == 1
            assert sum(admission[c]["admitted"] for c in cached_classes) == 1

    def test_certain_queries_reclassify_from_the_cache(self, udb):
        """execute_query caches a certain(...) under its relational core's
        key; classification must look there, not at the full tree, or a
        hot certain statement stays 'cold' forever."""
        with QueryServer(udb, workers=2) as server:
            session = server.session()
            sql = "certain (select id from r where faction = 'Enemy')"
            first = session.execute(sql)
            second = session.execute(sql)
            assert bag(first) == bag(second)
            admission = server.stats()["admission"]
            assert admission["cold"]["admitted"] == 1
            cached = sum(
                admission[c]["admitted"] for c in admission if c != "cold"
            )
            assert cached == 1

    def test_udatabase_serve_hook(self, udb):
        server = udb.serve(workers=1)
        try:
            result = server.query("possible (select id from r)")
            assert len(result.rows) == 4
        finally:
            server.close()
