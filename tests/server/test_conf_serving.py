"""Serving confidence queries: wire payload, cost class, admission, trace."""

from __future__ import annotations

import pytest

from repro.server import QueryServer

from tests.conftest import build_vehicles_udb
from tests.server.test_tcp import Client
from tests.server.test_obs_e2e import _find, _operator_nodes

CONF_SQL = "conf (select id from r where type = 'Tank') method exact"


@pytest.fixture()
def served():
    udb = build_vehicles_udb()
    server = QueryServer(udb, workers=4)
    handle = server.serve_tcp()
    yield server, handle.address
    handle.close()
    server.close()


def test_query_op_returns_conf_payload(served):
    _server, address = served
    client = Client(address)
    try:
        answer = client.rpc(op="query", sql=CONF_SQL)
        assert answer["ok"]
        assert answer["columns"] == ["id", "conf"]
        by_id = dict(map(tuple, answer["rows"]))
        assert by_id[1] == pytest.approx(1.0)
        assert by_id[2] == pytest.approx(0.5)
        # the computation summary rides along on the wire
        summary = answer["conf"]
        assert summary["method"] == "exact"
        assert summary["groups"] == len(answer["rows"])
        assert summary["exact_groups"] == summary["groups"]
        assert summary["epsilon"] == 0.01 and summary["delta"] == 0.05
    finally:
        client.close()


def test_conf_queries_admit_under_their_own_class(served):
    server, address = served
    client = Client(address)
    try:
        # even a never-seen conf query classifies as "conf" (the statement
        # shape is visible before planning), not "cold"
        traced = client.rpc(op="trace", sql=CONF_SQL)
        assert traced["ok"]
        trace = traced["trace"]
        assert trace["attrs"]["cost_class"] == "conf"
        admission = _find(trace, "admission")
        assert admission["attrs"]["cost_class"] == "conf"

        stats = client.rpc(op="stats")
        admission_stats = stats["stats"]["admission"]
        assert admission_stats["conf"]["admitted"] >= 1
        assert admission_stats["conf"]["shed"] == 0
    finally:
        client.close()


def test_trace_shows_confidence_operator_actuals(served):
    _server, address = served
    client = Client(address)
    try:
        traced = client.rpc(op="trace", sql=CONF_SQL)
        assert traced["ok"]
        execute = _find(traced["trace"], "execute")
        operators = execute["attrs"]["operators"]
        assert operators["operator"] == "Confidence"
        assert operators["actual_rows"] == len(traced["rows"])
        # the translated child pipeline sits underneath with its own actuals
        nodes = list(_operator_nodes(operators))
        assert len(nodes) > 1
    finally:
        client.close()


def test_approx_options_flow_through_the_wire(served):
    _server, address = served
    client = Client(address)
    try:
        answer = client.rpc(
            op="query",
            sql="conf (select id from r where type = 'Tank') "
            "method approx epsilon 0.02 delta 0.1 seed 9",
        )
        assert answer["ok"]
        summary = answer["conf"]
        assert summary["method"] == "approx"
        assert summary["epsilon"] == 0.02
        assert summary["delta"] == 0.1
        assert summary["seed"] == 9
        # Figure 1 groups are singleton components: computed exactly even
        # under forced sampling, and still within epsilon of the truth
        by_id = dict(map(tuple, answer["rows"]))
        assert by_id[1] == pytest.approx(1.0, abs=0.02)
        assert by_id[4] == pytest.approx(0.5, abs=0.02)
    finally:
        client.close()
