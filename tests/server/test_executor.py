"""The concurrent executor: pooling and single-flight coalescing."""

from __future__ import annotations

import threading

import pytest

from repro.server import ConcurrentExecutor


def test_runs_work_and_returns_result():
    with ConcurrentExecutor(workers=2) as executor:
        assert executor.run(lambda: 41 + 1) == 42
        assert executor.stats()["executed"] == 1


def test_identical_inflight_requests_coalesce_to_one_execution():
    executor = ConcurrentExecutor(workers=4)
    entered = threading.Event()
    release = threading.Event()
    calls = []

    def slow():
        calls.append(1)
        entered.set()
        release.wait(timeout=5)
        return "answer"

    key = ("plan-key", ("param",), 0)
    leader = executor.submit(slow, key=key)
    assert entered.wait(timeout=5)
    followers = [executor.submit(slow, key=key) for _ in range(3)]
    release.set()
    assert leader.result(timeout=5) == "answer"
    assert all(f.result(timeout=5) == "answer" for f in followers)
    assert len(calls) == 1  # one execution served four requests
    stats = executor.stats()
    assert stats["executed"] == 1 and stats["coalesced"] == 3
    executor.shutdown()


def test_different_catalog_versions_do_not_coalesce():
    executor = ConcurrentExecutor(workers=4)
    entered = threading.Event()
    release = threading.Event()
    calls = []

    def slow():
        calls.append(1)
        entered.set()
        release.wait(timeout=5)
        return len(calls)

    first = executor.submit(slow, key=("k", (), 0))
    assert entered.wait(timeout=5)
    second = executor.submit(slow, key=("k", (), 1))  # DDL bumped the version
    release.set()
    first.result(timeout=5)
    second.result(timeout=5)
    assert len(calls) == 2
    assert executor.stats()["coalesced"] == 0
    executor.shutdown()


def test_none_key_never_coalesces():
    executor = ConcurrentExecutor(workers=2)
    results = {executor.run(lambda: object(), key=None) for _ in range(3)}
    assert len(results) == 3
    assert executor.stats()["coalesced"] == 0
    executor.shutdown()


def test_coalesce_disabled_executes_every_request():
    executor = ConcurrentExecutor(workers=2, coalesce=False)
    for _ in range(3):
        executor.run(lambda: 1, key=("same", (), 0))
    assert executor.stats()["executed"] == 3
    executor.shutdown()


def test_leader_exception_propagates_to_all_waiters():
    executor = ConcurrentExecutor(workers=4)
    entered = threading.Event()
    release = threading.Event()

    def failing():
        entered.set()
        release.wait(timeout=5)
        raise RuntimeError("boom")

    key = ("k", (), 0)
    leader = executor.submit(failing, key=key)
    assert entered.wait(timeout=5)
    follower = executor.submit(failing, key=key)
    release.set()
    with pytest.raises(RuntimeError):
        leader.result(timeout=5)
    with pytest.raises(RuntimeError):
        follower.result(timeout=5)
    # the failed flight was cleaned up: a fresh request executes fresh
    release.set()
    entered.clear()
    with pytest.raises(RuntimeError):
        executor.submit(failing, key=key).result(timeout=5)
    executor.shutdown()


def test_shutdown_rejects_new_work():
    executor = ConcurrentExecutor(workers=1)
    executor.shutdown()
    with pytest.raises(RuntimeError):
        executor.submit(lambda: 1)
