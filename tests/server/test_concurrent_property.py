"""Concurrent correctness: parallel answers identical to serial execution.

The serving subsystem's core promise: N threads running a mix of cached,
prepared, and cold queries — through raw ``execute_query`` and through
server-bound sessions, across all three execution modes — always receive
answers identical to serial execution, even while a DDL thread bumps the
catalog (index create/drop, statistics refresh) under them.

Index DDL never changes *what* a query answers, only how it executes, so
the serial baseline is well-defined throughout.  Without DDL the
comparison is byte-identical (same rows, same order, per mode); under
concurrent DDL a plan may legitimately switch access paths mid-run, which
can permute row order, so that comparison is on row multisets.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.core import execute_query
from repro.core.query import Poss, Rel, UJoin, UProject, USelect
from repro.relational.expressions import col, lit
from repro.server import QueryServer

from tests.conftest import build_vehicles_udb

MODES = ["rows", "blocks", "columns"]


def _query_pool():
    """(name, query builder) pairs covering selection/join/projection mixes."""

    def by_type(value):
        return Poss(USelect(Rel("r"), col("type").eq(lit(value))))

    def by_faction(value):
        return Poss(
            UProject(USelect(Rel("r"), col("faction").eq(lit(value))), ["id"])
        )

    def self_join():
        return Poss(
            UProject(
                UJoin(
                    Rel("r", "x"),
                    Rel("r", "y"),
                    col("x.type").eq(col("y.type")),
                ),
                ["x.id", "y.id"],
            )
        )

    def by_id_threshold(k):
        return Poss(USelect(Rel("r"), col("id") > lit(k)))

    pool = [
        ("tank", by_type("Tank")),
        ("transport", by_type("Transport")),
        ("friend", by_faction("Friend")),
        ("enemy", by_faction("Enemy")),
        ("self-join", self_join()),
    ]
    # distinct literals => distinct plan-cache entries: the "cold" mix
    pool.extend((f"cold-{k}", by_id_threshold(k)) for k in range(4))
    return pool


def _rows_of(result):
    relation = getattr(result, "relation", result)
    return list(relation.rows)


@pytest.mark.parametrize("mode", MODES)
def test_threads_running_mixed_queries_match_serial_exactly(mode):
    """No DDL: every concurrent answer is byte-identical (ordered) to the
    serial answer in the same mode."""
    udb = build_vehicles_udb()
    pool = _query_pool()
    expected = {name: _rows_of(execute_query(q, udb, mode=mode)) for name, q in pool}
    mismatches = []

    def worker(offset):
        for i in range(12):
            name, query = pool[(offset + i) % len(pool)]
            got = _rows_of(execute_query(query, udb, mode=mode))
            if got != expected[name]:
                mismatches.append((name, mode))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not mismatches


def test_threads_with_concurrent_ddl_match_serial_multisets():
    """A DDL thread creates/drops indexes and refreshes statistics while
    six query threads run the mixed workload across all modes; answers
    stay multiset-identical to serial."""
    udb = build_vehicles_udb()
    db = udb.to_database()
    pool = _query_pool()
    expected = {
        name: Counter(_rows_of(execute_query(q, udb))) for name, q in pool
    }
    mismatches = []
    errors = []
    stop = threading.Event()

    def ddl_thread():
        try:
            toggle = 0
            while not stop.is_set():
                name = f"i_churn_{toggle % 2}"
                db.create_index(name, "w", ["var"], kind="sorted", replace=True)
                db.analyze("u_r_id")
                db.drop_index(name)
                toggle += 1
        except Exception as error:  # pragma: no cover - the assertion
            errors.append(error)

    def worker(offset):
        try:
            for i in range(15):
                name, query = pool[(offset + i) % len(pool)]
                mode = MODES[(offset + i) % len(MODES)]
                got = Counter(_rows_of(execute_query(query, udb, mode=mode)))
                if got != expected[name]:
                    mismatches.append((name, mode))
        except Exception as error:  # pragma: no cover - the assertion
            errors.append(error)

    churner = threading.Thread(target=ddl_thread)
    workers = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
    churner.start()
    for t in workers:
        t.start()
    for t in workers:
        t.join(timeout=120)
    stop.set()
    churner.join(timeout=30)
    assert not errors
    assert not mismatches


def test_server_sessions_with_ddl_match_serial_multisets():
    """The same guarantee through the full serving stack: server-bound
    sessions (admission + pool + coalescing) with a DDL churner."""
    udb = build_vehicles_udb()
    db = udb.to_database()
    statements = {
        "tank": ("possible (select id, type from r where type = $1)", ("Tank",)),
        "transport": (
            "possible (select id, type from r where type = $1)",
            ("Transport",),
        ),
        "enemy": ("possible (select id from r where faction = 'Enemy')", ()),
        "all": ("possible (select id, type, faction from r)", ()),
    }
    baseline_session = udb.session()
    expected = {
        name: Counter(_rows_of(baseline_session.execute(sql, params)))
        for name, (sql, params) in statements.items()
    }
    server = QueryServer(udb, workers=4)
    mismatches = []
    errors = []
    stop = threading.Event()

    def ddl_thread():
        try:
            toggle = 0
            while not stop.is_set():
                name = f"i_serve_{toggle % 2}"
                db.create_index(name, "w", ["var"], kind="sorted", replace=True)
                db.drop_index(name)
                toggle += 1
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def client(offset):
        try:
            session = server.session()
            names = sorted(statements)
            for i in range(20):
                name = names[(offset + i) % len(names)]
                sql, params = statements[name]
                got = Counter(_rows_of(session.execute(sql, params)))
                if got != expected[name]:
                    mismatches.append(name)
        except Exception as error:  # pragma: no cover
            errors.append(error)

    churner = threading.Thread(target=ddl_thread)
    clients = [threading.Thread(target=client, args=(t,)) for t in range(5)]
    churner.start()
    for t in clients:
        t.start()
    for t in clients:
        t.join(timeout=120)
    stop.set()
    churner.join(timeout=30)
    server.close()
    assert not errors
    assert not mismatches


def test_lazy_index_builds_race_free():
    """Many threads planning over a fresh UDatabase trigger the deferred
    auto-index builds concurrently; every index is built exactly once and
    every answer is correct."""
    udb = build_vehicles_udb()  # auto-index definitions are still pending
    expected = Counter(
        _rows_of(execute_query(Poss(USelect(Rel("r"), col("type").eq(lit("Tank")))), udb))
    )
    fresh = build_vehicles_udb()
    results = []
    errors = []

    def worker():
        try:
            query = Poss(USelect(Rel("r"), col("type").eq(lit("Tank"))))
            results.append(Counter(_rows_of(execute_query(query, fresh))))
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert all(r == expected for r in results)
    # exactly one tid index + one value index per partition (no duplicates
    # from racing builds)
    from repro.relational.index import built_indexes_on

    for part in fresh.partitions("r"):
        names = [index.name for index in built_indexes_on(part.relation)]
        assert len(names) == len(set(names))
