"""Concurrent correctness: parallel answers identical to serial execution.

The serving subsystem's core promise: N threads running a mix of cached,
prepared, and cold queries — through raw ``execute_query`` and through
server-bound sessions, across all three execution modes — always receive
answers identical to serial execution, even while a DDL thread bumps the
catalog (index create/drop, statistics refresh) under them.

Index DDL never changes *what* a query answers, only how it executes, so
the serial baseline is well-defined throughout.  Without DDL the
comparison is byte-identical (same rows, same order, per mode); under
concurrent DDL a plan may legitimately switch access paths mid-run, which
can permute row order, so that comparison is on row multisets.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.core import execute_query
from repro.core.query import Poss, Rel, UJoin, UProject, USelect
from repro.relational.expressions import col, lit
from repro.server import QueryServer
from repro.sql import execute_sql

from tests.conftest import build_vehicles_udb

MODES = ["rows", "blocks", "columns"]


def _query_pool():
    """(name, query builder) pairs covering selection/join/projection mixes."""

    def by_type(value):
        return Poss(USelect(Rel("r"), col("type").eq(lit(value))))

    def by_faction(value):
        return Poss(
            UProject(USelect(Rel("r"), col("faction").eq(lit(value))), ["id"])
        )

    def self_join():
        return Poss(
            UProject(
                UJoin(
                    Rel("r", "x"),
                    Rel("r", "y"),
                    col("x.type").eq(col("y.type")),
                ),
                ["x.id", "y.id"],
            )
        )

    def by_id_threshold(k):
        return Poss(USelect(Rel("r"), col("id") > lit(k)))

    pool = [
        ("tank", by_type("Tank")),
        ("transport", by_type("Transport")),
        ("friend", by_faction("Friend")),
        ("enemy", by_faction("Enemy")),
        ("self-join", self_join()),
    ]
    # distinct literals => distinct plan-cache entries: the "cold" mix
    pool.extend((f"cold-{k}", by_id_threshold(k)) for k in range(4))
    return pool


def _rows_of(result):
    relation = getattr(result, "relation", result)
    return list(relation.rows)


@pytest.mark.parametrize("mode", MODES)
def test_threads_running_mixed_queries_match_serial_exactly(mode):
    """No DDL: every concurrent answer is byte-identical (ordered) to the
    serial answer in the same mode."""
    udb = build_vehicles_udb()
    pool = _query_pool()
    expected = {name: _rows_of(execute_query(q, udb, mode=mode)) for name, q in pool}
    mismatches = []

    def worker(offset):
        for i in range(12):
            name, query = pool[(offset + i) % len(pool)]
            got = _rows_of(execute_query(query, udb, mode=mode))
            if got != expected[name]:
                mismatches.append((name, mode))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not mismatches


def test_threads_with_concurrent_ddl_match_serial_multisets():
    """A DDL thread creates/drops indexes and refreshes statistics while
    six query threads run the mixed workload across all modes; answers
    stay multiset-identical to serial."""
    udb = build_vehicles_udb()
    db = udb.to_database()
    pool = _query_pool()
    expected = {
        name: Counter(_rows_of(execute_query(q, udb))) for name, q in pool
    }
    mismatches = []
    errors = []
    stop = threading.Event()

    def ddl_thread():
        try:
            toggle = 0
            while not stop.is_set():
                name = f"i_churn_{toggle % 2}"
                db.create_index(name, "w", ["var"], kind="sorted", replace=True)
                db.analyze("u_r_id")
                db.drop_index(name)
                toggle += 1
        except Exception as error:  # pragma: no cover - the assertion
            errors.append(error)

    def worker(offset):
        try:
            for i in range(15):
                name, query = pool[(offset + i) % len(pool)]
                mode = MODES[(offset + i) % len(MODES)]
                got = Counter(_rows_of(execute_query(query, udb, mode=mode)))
                if got != expected[name]:
                    mismatches.append((name, mode))
        except Exception as error:  # pragma: no cover - the assertion
            errors.append(error)

    churner = threading.Thread(target=ddl_thread)
    workers = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
    churner.start()
    for t in workers:
        t.start()
    for t in workers:
        t.join(timeout=120)
    stop.set()
    churner.join(timeout=30)
    assert not errors
    assert not mismatches


def test_server_sessions_with_ddl_match_serial_multisets():
    """The same guarantee through the full serving stack: server-bound
    sessions (admission + pool + coalescing) with a DDL churner."""
    udb = build_vehicles_udb()
    db = udb.to_database()
    statements = {
        "tank": ("possible (select id, type from r where type = $1)", ("Tank",)),
        "transport": (
            "possible (select id, type from r where type = $1)",
            ("Transport",),
        ),
        "enemy": ("possible (select id from r where faction = 'Enemy')", ()),
        "all": ("possible (select id, type, faction from r)", ()),
    }
    baseline_session = udb.session()
    expected = {
        name: Counter(_rows_of(baseline_session.execute(sql, params)))
        for name, (sql, params) in statements.items()
    }
    server = QueryServer(udb, workers=4)
    mismatches = []
    errors = []
    stop = threading.Event()

    def ddl_thread():
        try:
            toggle = 0
            while not stop.is_set():
                name = f"i_serve_{toggle % 2}"
                db.create_index(name, "w", ["var"], kind="sorted", replace=True)
                db.drop_index(name)
                toggle += 1
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def client(offset):
        try:
            session = server.session()
            names = sorted(statements)
            for i in range(20):
                name = names[(offset + i) % len(names)]
                sql, params = statements[name]
                got = Counter(_rows_of(session.execute(sql, params)))
                if got != expected[name]:
                    mismatches.append(name)
        except Exception as error:  # pragma: no cover
            errors.append(error)

    churner = threading.Thread(target=ddl_thread)
    clients = [threading.Thread(target=client, args=(t,)) for t in range(5)]
    churner.start()
    for t in clients:
        t.start()
    for t in clients:
        t.join(timeout=120)
    stop.set()
    churner.join(timeout=30)
    server.close()
    assert not errors
    assert not mismatches


def test_lazy_index_builds_race_free():
    """Many threads planning over a fresh UDatabase trigger the deferred
    auto-index builds concurrently; every index is built exactly once and
    every answer is correct."""
    udb = build_vehicles_udb()  # auto-index definitions are still pending
    expected = Counter(
        _rows_of(execute_query(Poss(USelect(Rel("r"), col("type").eq(lit("Tank")))), udb))
    )
    fresh = build_vehicles_udb()
    results = []
    errors = []

    def worker():
        try:
            query = Poss(USelect(Rel("r"), col("type").eq(lit("Tank"))))
            results.append(Counter(_rows_of(execute_query(query, fresh))))
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert all(r == expected for r in results)
    # exactly one tid index + one value index per partition (no duplicates
    # from racing builds)
    from repro.relational.index import built_indexes_on

    for part in fresh.partitions("r"):
        names = [index.name for index in built_indexes_on(part.relation)]
        assert len(names) == len(set(names))


def test_concurrent_dml_readers_see_only_statement_boundaries():
    """A writer thread appends rows one statement at a time while reader
    threads query in all three modes; every answer equals the serial
    answer *after some prefix of the statements* — never a torn state
    where one vertical partition has a row the others lack."""
    inserts = [(100 + i, "Tank" if i % 2 else "Jeep", "Friend") for i in range(12)]
    query = Poss(UProject(Rel("r"), ["id", "type", "faction"]))

    # serial twin: replay the statements to enumerate every valid state
    twin = build_vehicles_udb()
    valid = [frozenset(_rows_of(execute_query(query, twin)))]
    for row in inserts:
        execute_sql("insert into r values (%d, '%s', '%s')" % row, twin)
        valid.append(frozenset(_rows_of(execute_query(query, twin))))
    states = set(valid)

    udb = build_vehicles_udb()
    torn = []
    errors = []
    done = threading.Event()

    def writer():
        try:
            for row in inserts:
                execute_sql("insert into r values (%d, '%s', '%s')" % row, udb)
        except Exception as error:  # pragma: no cover
            errors.append(error)
        finally:
            done.set()

    def reader(offset):
        try:
            i = 0
            while not done.is_set() or i < 6:
                mode = MODES[(offset + i) % len(MODES)]
                answer = frozenset(_rows_of(execute_query(query, udb, mode=mode)))
                if answer not in states:
                    torn.append((mode, sorted(answer)))
                i += 1
        except Exception as error:  # pragma: no cover
            errors.append(error)

    writer_thread = threading.Thread(target=writer)
    readers = [threading.Thread(target=reader, args=(t,)) for t in range(4)]
    writer_thread.start()
    for t in readers:
        t.start()
    writer_thread.join(timeout=120)
    for t in readers:
        t.join(timeout=120)
    assert not errors
    assert not torn
    # the final state is the full serial application, in every mode
    for mode in MODES:
        assert frozenset(_rows_of(execute_query(query, udb, mode=mode))) == valid[-1]


def test_snapshot_reads_stable_under_concurrent_dml():
    """Inside ``session.snapshot()`` a reader either sees answers
    identical to one serial state on every statement, or gets
    ``SnapshotChanged`` — concurrent DML can never mix pre- and
    post-write answers within one snapshot block."""
    from repro.server.session import SnapshotChanged

    inserts = [(200 + i, "Tank", "Friend") for i in range(10)]
    sql = "possible (select id, type, faction from r)"

    twin = build_vehicles_udb()
    states = {frozenset(_rows_of(twin.session().execute(sql, ())))}
    for row in inserts:
        execute_sql("insert into r values (%d, '%s', '%s')" % row, twin)
        states.add(frozenset(_rows_of(twin.session().execute(sql, ()))))

    udb = build_vehicles_udb()
    mismatches = []
    errors = []
    retries = [0]
    done = threading.Event()

    def writer():
        try:
            session = udb.session()
            for row in inserts:
                session.execute("insert into r values (%d, '%s', '%s')" % row, ())
        except Exception as error:  # pragma: no cover
            errors.append(error)
        finally:
            done.set()

    def reader():
        try:
            session = udb.session()
            while not done.is_set():
                try:
                    with session.snapshot():
                        seen = [
                            frozenset(_rows_of(session.execute(sql, ())))
                            for _ in range(3)
                        ]
                except SnapshotChanged:
                    retries[0] += 1
                    continue
                if len(set(seen)) != 1 or seen[0] not in states:
                    mismatches.append(sorted(seen[0]))
        except Exception as error:  # pragma: no cover
            errors.append(error)

    writer_thread = threading.Thread(target=writer)
    readers = [threading.Thread(target=reader) for _ in range(4)]
    writer_thread.start()
    for t in readers:
        t.start()
    writer_thread.join(timeout=120)
    for t in readers:
        t.join(timeout=120)
    assert not errors
    assert not mismatches
    # and a quiesced snapshot sees exactly the fully-written state
    session = udb.session()
    with session.snapshot():
        final = frozenset(_rows_of(session.execute(sql, ())))
    assert final == frozenset(_rows_of(twin.session().execute(sql, ())))


def test_prepared_writers_interleave_without_lost_updates():
    """N sessions hammer one prepared INSERT concurrently; every logical
    tuple lands (writes serialize on the write lock, and identical DML
    texts never coalesce into one shared flight)."""
    udb = build_vehicles_udb()
    server = QueryServer(udb, workers=4)
    errors = []

    def client(offset):
        try:
            session = server.session()
            for i in range(10):
                result = session.execute(
                    "insert into r values ($1, 'Tank', 'Friend')",
                    (1000 + offset * 10 + i,),
                )
                assert result.count == 1
        except Exception as error:  # pragma: no cover
            errors.append(error)

    clients = [threading.Thread(target=client, args=(t,)) for t in range(5)]
    for t in clients:
        t.start()
    for t in clients:
        t.join(timeout=120)
    server.close()
    assert not errors
    answer = _rows_of(
        execute_query(Poss(UProject(Rel("r"), ["id"])), udb)
    )
    inserted = {row[0] for row in answer if isinstance(row[0], int) and row[0] >= 1000}
    assert inserted == set(range(1000, 1050))
    stats = server.stats()
    assert stats["admission"]["dml"]["admitted"] == 50
    assert stats["executor"]["coalesced"] == 0  # DML never coalesces


def test_metrics_are_exact_under_concurrency():
    """Six session threads run a fixed workload; afterwards every counter
    equals the arithmetic total — no lost increments under contention —
    and the answers still match serial execution.

    Coalescing is off so each request is its own execution: the expected
    counts are exact, not bounds.
    """
    udb = build_vehicles_udb()
    server = QueryServer(udb, workers=4, coalesce=False)
    statements = [
        "possible (select id from r where type = 'Tank')",
        "possible (select id from r where type = 'Transport')",
        "possible (select id from r where faction = 'Enemy')",
        "possible (select id, type, faction from r)",
    ]
    baseline = udb.session()
    expected = {
        sql: Counter(_rows_of(baseline.execute(sql, ()))) for sql in statements
    }
    THREADS, LOOPS = 6, 12
    mismatches = []
    errors = []

    sessions = [server.session() for _ in range(THREADS)]

    def reader(offset):
        try:
            session = sessions[offset]
            for i in range(LOOPS):
                sql = statements[(offset + i) % len(statements)]
                got = Counter(_rows_of(session.execute(sql, ())))
                if got != expected[sql]:
                    mismatches.append(sql)
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def writer(offset):
        try:
            # one insert per thread, unique id: exact DML totals
            sessions[offset].execute(
                "insert into r values ($1, 'Tank', 'Friend')", (500 + offset,)
            )
        except Exception as error:  # pragma: no cover
            errors.append(error)

    from repro.obs import metrics_snapshot, reset_metrics
    from repro.relational import reset_plan_cache

    # drop the session-setup and baseline increments: count the workload
    # only; empty the plan cache so "each text plans exactly once" is a
    # property of the concurrent run, not of the serial baseline
    reset_metrics()
    reset_plan_cache()

    # queries first, then writes — concurrent inserts would change the
    # expected answers out from under the readers
    for phase in (reader, writer):
        threads = [
            threading.Thread(target=phase, args=(t,)) for t in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
    server.close()
    assert not errors
    assert not mismatches

    queries = THREADS * LOOPS
    requests = queries + THREADS  # + one insert per thread
    snap = metrics_snapshot()
    counters = snap["counters"]

    assert sum(counters["queries_total"].values()) == queries
    # the 4 distinct texts plan exactly once each across all threads
    cold = sum(
        count
        for labels, count in counters["queries_total"].items()
        if "cached=false" in labels
    )
    assert cold == len(statements)
    assert "sessions_opened_total" not in counters  # all opened pre-reset
    assert counters["dml_statements_total"] == {"op=insert": THREADS}
    assert counters["dml_rows_total"] == {"op=insert": THREADS}
    assert sum(counters["admission_admitted_total"].values()) == requests
    assert counters["executor_executed_total"] == {"": requests}
    assert "executor_coalesced_total" not in counters  # coalescing was off

    # every request was traced and timed exactly once
    latency = snap["histograms"]["query_seconds"]
    assert sum(series["count"] for series in latency.values()) == requests


def test_compaction_races_readers_writers_and_snapshots():
    """A VACUUM churner rewrites segment stacks while two writers append,
    two readers query, and a snapshot reader demands repeatable reads —
    six threads total.  Compaction must be answer-invisible: every read
    sees the base rows plus a per-writer *prefix* of that writer's
    inserts (statements are atomic, no torn vertical state, no lost
    updates), snapshots either stay internally consistent or raise
    ``SnapshotChanged``, and the quiesced database matches the serial
    twin byte-for-byte in every mode."""
    from repro.server.session import SnapshotChanged

    PER_WRITER = 12
    writer_ids = {t: [2000 + t * 100 + i for i in range(PER_WRITER)] for t in (0, 1)}
    query = Poss(UProject(Rel("r"), ["id", "type", "faction"]))
    sql = "possible (select id, type, faction from r)"

    twin = build_vehicles_udb()
    base_rows = frozenset(_rows_of(execute_query(query, twin)))
    for ids in writer_ids.values():
        for i in ids:
            execute_sql(f"insert into r values ({i}, 'Tank', 'Friend')", twin)
    twin.compact()

    udb = build_vehicles_udb()
    violations = []
    errors = []
    compacted = [0]
    done = threading.Event()

    def writer(t):
        try:
            for i in writer_ids[t]:
                execute_sql(f"insert into r values ({i}, 'Tank', 'Friend')", udb)
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def vacuum():
        try:
            while not done.is_set():
                result = udb.compact()
                if result.changed:
                    compacted[0] += 1
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def check(answer, context):
        if not base_rows <= answer:
            violations.append((context, "base rows lost"))
        seen_ids = {row[0] for row in answer}
        for t, ids in writer_ids.items():
            flags = [i in seen_ids for i in ids]
            if flags != sorted(flags, reverse=True):  # not a prefix
                violations.append((context, f"writer {t} insert torn"))

    def reader(offset):
        try:
            i = 0
            while not done.is_set() or i < 6:
                mode = MODES[(offset + i) % len(MODES)]
                check(
                    frozenset(_rows_of(execute_query(query, udb, mode=mode))),
                    f"reader-{mode}",
                )
                i += 1
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def snapshot_reader():
        try:
            session = udb.session()
            while not done.is_set():
                try:
                    with session.snapshot():
                        seen = [
                            frozenset(_rows_of(session.execute(sql, ())))
                            for _ in range(3)
                        ]
                except SnapshotChanged:
                    continue  # compaction/DML legitimately moved the catalog
                if len(set(seen)) != 1:
                    violations.append(("snapshot", "answers moved inside block"))
                else:
                    check(seen[0], "snapshot")
        except Exception as error:  # pragma: no cover
            errors.append(error)

    writers = [threading.Thread(target=writer, args=(t,)) for t in (0, 1)]
    others = [
        threading.Thread(target=vacuum),
        threading.Thread(target=reader, args=(0,)),
        threading.Thread(target=reader, args=(1,)),
        threading.Thread(target=snapshot_reader),
    ]
    for t in others:
        t.start()
    for t in writers:
        t.start()
    for t in writers:
        t.join(timeout=120)
    done.set()
    for t in others:
        t.join(timeout=120)
    assert not errors
    assert not violations
    # quiesced: one final VACUUM, then identical to the serial twin.
    # Interleaved writers permute insertion order, so the cross-database
    # comparison sorts; *within* udb, every mode must agree byte-for-byte
    # on one answer (a stale columnar plan would diverge here).
    udb.compact()
    for part in udb.partitions("r"):
        assert len(part.relation.segments()) == 1
        assert part.relation.deleted_ordinals() == frozenset()
    answers = {
        mode: _rows_of(execute_query(query, udb, mode=mode)) for mode in MODES
    }
    for mode in MODES:
        assert sorted(answers[mode]) == sorted(
            _rows_of(execute_query(query, twin, mode=mode))
        ), mode
    assert answers["rows"] == answers["blocks"] == answers["columns"]


def test_transactions_all_or_nothing_under_interleaving():
    """Six sessions each commit a multi-statement transaction (retrying
    first-updater-wins conflicts) while a reader watches: no reader ever
    sees part of a transaction's batch, and every batch eventually
    lands."""
    from repro.core.txn import TransactionConflict

    THREADS, BATCH = 6, 3
    server = QueryServer(build_vehicles_udb(), workers=4)
    udb = server.udb
    batches = {
        t: [3000 + t * 10 + i for i in range(BATCH)] for t in range(THREADS)
    }
    partials = []
    errors = []
    done = threading.Event()

    def txn_client(t):
        try:
            session = server.session()
            for attempt in range(200):
                session.begin()
                try:
                    for i in batches[t]:
                        session.execute(
                            "insert into r values ($1, 'Tank', 'Friend')", (i,)
                        )
                    session.commit()
                    return
                except TransactionConflict:
                    continue  # fully rolled back: stage again from scratch
            errors.append(RuntimeError(f"client {t} never committed"))
        except Exception as error:  # pragma: no cover
            errors.append(error)

    def reader():
        try:
            session = server.session()
            while not done.is_set():
                rows = _rows_of(
                    session.execute("possible (select id from r)", ())
                )
                seen = {row[0] for row in rows}
                for t, ids in batches.items():
                    hit = sum(1 for i in ids if i in seen)
                    if hit not in (0, BATCH):
                        partials.append((t, hit))
        except Exception as error:  # pragma: no cover
            errors.append(error)

    watcher = threading.Thread(target=reader)
    clients = [threading.Thread(target=txn_client, args=(t,)) for t in range(THREADS)]
    watcher.start()
    for t in clients:
        t.start()
    for t in clients:
        t.join(timeout=120)
    done.set()
    watcher.join(timeout=120)
    server.close()
    assert not errors
    assert not partials
    final = {
        row[0]
        for row in _rows_of(execute_query(Poss(UProject(Rel("r"), ["id"])), udb))
    }
    for ids in batches.values():
        assert set(ids) <= final  # no lost updates
