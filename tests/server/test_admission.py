"""Admission control: classification, limits, bounded queue, shedding."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.translate import query_cache_key
from repro.relational.plancache import cached_cost_class, cost_class_of
from repro.server import AdmissionController, AdmissionPolicy, Overloaded

from tests.conftest import build_vehicles_udb


class TestController:
    def test_fast_path_admits_and_counts(self):
        controller = AdmissionController()
        with controller.admit("point"):
            pass
        assert controller.stats()["point"]["admitted"] == 1
        assert controller.stats()["point"]["shed"] == 0

    def test_limit_with_empty_queue_sheds_immediately(self):
        controller = AdmissionController(
            AdmissionPolicy(limits={"heavy": 1}, queue_limit=0)
        )
        with controller.admit("heavy"):
            with pytest.raises(Overloaded) as caught:
                with controller.admit("heavy"):
                    pass  # pragma: no cover - never admitted
        assert caught.value.cost_class == "heavy"
        assert controller.stats()["heavy"]["shed"] == 1

    def test_queue_wait_times_out(self):
        controller = AdmissionController(
            AdmissionPolicy(limits={"join": 1}, queue_limit=4, queue_timeout=0.05)
        )
        with controller.admit("join"):
            started = time.perf_counter()
            with pytest.raises(Overloaded):
                with controller.admit("join"):
                    pass  # pragma: no cover
            assert time.perf_counter() - started >= 0.04
        stats = controller.stats()["join"]
        assert stats["queued"] == 1 and stats["shed"] == 1

    def test_queued_request_admits_when_slot_frees(self):
        controller = AdmissionController(
            AdmissionPolicy(limits={"scan": 1}, queue_limit=4, queue_timeout=5.0)
        )
        holding = threading.Event()
        admitted = threading.Event()

        def holder():
            with controller.admit("scan"):
                holding.set()
                admitted.wait(timeout=5)

        def waiter():
            holding.wait(timeout=5)
            with controller.admit("scan"):
                pass

        first = threading.Thread(target=holder)
        second = threading.Thread(target=waiter)
        first.start()
        holding.wait(timeout=5)
        second.start()
        time.sleep(0.05)  # let the waiter queue up
        assert controller.stats()["scan"]["waiting"] == 1
        admitted.set()
        first.join(timeout=5)
        second.join(timeout=5)
        stats = controller.stats()["scan"]
        assert stats["admitted"] == 2 and stats["shed"] == 0 and stats["waiting"] == 0

    def test_slots_release_on_exception(self):
        controller = AdmissionController(
            AdmissionPolicy(limits={"cold": 1}, queue_limit=0)
        )
        with pytest.raises(ValueError):
            with controller.admit("cold"):
                raise ValueError("statement failed")
        with controller.admit("cold"):  # the slot came back
            pass

    def test_unknown_class_gets_the_cold_limit(self):
        controller = AdmissionController(
            AdmissionPolicy(limits={"cold": 1}, queue_limit=0)
        )
        with controller.admit("mystery"):
            with pytest.raises(Overloaded):
                with controller.admit("mystery"):
                    pass  # pragma: no cover


class TestClassification:
    def test_cold_until_cached_then_plan_class(self):
        udb = build_vehicles_udb()
        session = udb.session()
        sql = "possible (select id, type from r where type = 'Tank')"
        prepared = session._by_text_statement(sql)
        key = query_cache_key(prepared.query, udb)
        assert cached_cost_class(key) is None  # never planned: cold
        session.execute(sql)
        cls = cached_cost_class(key)
        assert cls in ("point", "scan", "join", "heavy")

    def test_cost_class_of_shapes(self):
        from repro.relational.algebra import Join, Select
        from repro.relational.database import Database
        from repro.relational.expressions import col, lit
        from repro.relational.planner import plan_physical
        from repro.relational.relation import Relation

        small = Relation(["a", "b"], [(i, i % 3) for i in range(40)])
        db = Database({"t": small, "s": small})
        scan_plan = plan_physical(db.scan("t"))
        assert cost_class_of(scan_plan) == "point"  # 40 rows <= point limit
        filtered = plan_physical(Select(db.scan("t"), col("a") < lit(5)))
        assert cost_class_of(filtered) in ("point", "scan")
        join_plan = plan_physical(
            Join(
                db.scan("t", alias="t"),
                db.scan("s", alias="u"),
                col("t.a").eq(col("u.a")),
            ),
            use_indexes=False,
        )
        assert cost_class_of(join_plan) == "join"

    def test_heavy_class_for_deep_join_trees(self):
        from repro.relational.algebra import Join
        from repro.relational.database import Database
        from repro.relational.expressions import col
        from repro.relational.planner import plan_physical
        from repro.relational.relation import Relation

        rel = Relation(["a"], [(i,) for i in range(10)])
        db = Database({"r0": rel, "r1": rel, "r2": rel, "r3": rel})
        plan = db.scan("r0", alias="x0")
        for i in range(1, 4):
            plan = Join(
                plan, db.scan(f"r{i}", alias=f"x{i}"), col("x0.a").eq(col(f"x{i}.a"))
            )
        physical = plan_physical(plan, use_indexes=False)
        assert cost_class_of(physical) == "heavy"
