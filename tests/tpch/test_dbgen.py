"""Tests for the TPC-H population generator."""

import datetime

import pytest

from repro.tpch import TPCH_SCHEMAS, base_cardinality, generate, generate_table
from repro.tpch.dbgen import END_DATE, START_DATE
from repro.tpch.dictionaries import NATIONS, REGIONS, SEGMENTS


@pytest.fixture(scope="module")
def db():
    return generate(scale=0.002, seed=7)


class TestCardinalities:
    def test_fixed_tables(self, db):
        assert len(db["region"]) == 5
        assert len(db["nation"]) == 25

    def test_scaled_tables(self, db):
        assert len(db["supplier"]) == 20
        assert len(db["customer"]) == 300
        assert len(db["orders"]) == 3000
        assert len(db["part"]) == 400
        assert len(db["partsupp"]) == 4 * 400

    def test_lineitem_one_to_seven_per_order(self, db):
        per_order = {}
        i = db["lineitem"].schema.resolve("orderkey")
        for row in db["lineitem"].rows:
            per_order[row[i]] = per_order.get(row[i], 0) + 1
        assert set(per_order) == set(range(1, 3001))
        assert all(1 <= n <= 7 for n in per_order.values())

    def test_base_cardinality_helper(self):
        assert base_cardinality("customer", 0.01) == 1500
        with pytest.raises(ValueError):
            base_cardinality("lineitem", 1.0)


class TestSchemas:
    def test_all_tables_present(self, db):
        assert set(db) == set(TPCH_SCHEMAS)

    def test_schemas_match(self, db):
        for name, relation in db.items():
            assert relation.schema.names == TPCH_SCHEMAS[name]


class TestDistributions:
    def test_mktsegment_from_dictionary(self, db):
        i = db["customer"].schema.resolve("mktsegment")
        segments = {row[i] for row in db["customer"].rows}
        assert segments <= set(SEGMENTS)
        assert len(segments) == 5  # all five segments appear at scale 0.002

    def test_orderdates_in_range(self, db):
        i = db["orders"].schema.resolve("orderdate")
        for row in db["orders"].rows:
            assert START_DATE <= row[i] <= END_DATE

    def test_shipdate_after_orderdate(self, db):
        odate = {row[0]: row[4] for row in db["orders"].rows}
        ok_i = db["lineitem"].schema.resolve("orderkey")
        sd_i = db["lineitem"].schema.resolve("shipdate")
        for row in db["lineitem"].rows:
            assert row[sd_i] > odate[row[ok_i]]

    def test_discount_and_quantity_ranges(self, db):
        d_i = db["lineitem"].schema.resolve("discount")
        q_i = db["lineitem"].schema.resolve("quantity")
        for row in db["lineitem"].rows:
            assert 0.0 <= row[d_i] <= 0.10
            assert 1 <= row[q_i] <= 50

    def test_extendedprice_formula(self, db):
        q_i = db["lineitem"].schema.resolve("quantity")
        e_i = db["lineitem"].schema.resolve("extendedprice")
        for row in db["lineitem"].rows[:100]:
            assert row[e_i] > 0
            assert row[e_i] == pytest.approx(row[e_i], abs=0.01)

    def test_nations_and_regions_fixed(self, db):
        names = {row[1] for row in db["nation"].rows}
        assert "GERMANY" in names and "IRAQ" in names
        assert {row[1] for row in db["region"].rows} == set(REGIONS)
        assert len(NATIONS) == 25


class TestForeignKeys:
    def test_orders_reference_customers(self, db):
        custkeys = {row[0] for row in db["customer"].rows}
        i = db["orders"].schema.resolve("custkey")
        assert all(row[i] in custkeys for row in db["orders"].rows)

    def test_lineitem_references_orders_parts_suppliers(self, db):
        orderkeys = {row[0] for row in db["orders"].rows}
        partkeys = {row[0] for row in db["part"].rows}
        suppkeys = {row[0] for row in db["supplier"].rows}
        li = db["lineitem"]
        o_i, p_i, s_i = (
            li.schema.resolve("orderkey"),
            li.schema.resolve("partkey"),
            li.schema.resolve("suppkey"),
        )
        for row in li.rows:
            assert row[o_i] in orderkeys
            assert row[p_i] in partkeys
            assert row[s_i] in suppkeys

    def test_nation_regionkeys_valid(self, db):
        regionkeys = {row[0] for row in db["region"].rows}
        assert all(row[2] in regionkeys for row in db["nation"].rows)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(scale=0.001, seed=3)
        b = generate(scale=0.001, seed=3)
        for name in a:
            assert a[name].rows == b[name].rows

    def test_different_seed_different_data(self):
        a = generate(scale=0.001, seed=3)
        b = generate(scale=0.001, seed=4)
        assert a["customer"].rows != b["customer"].rows

    def test_generate_table_consistent_with_generate(self):
        full = generate(scale=0.001, seed=5)
        single = generate_table("orders", scale=0.001, seed=5)
        assert full["orders"].rows == single.rows

    def test_generate_table_unknown(self):
        with pytest.raises(KeyError):
            generate_table("bogus")
