"""Tests for the paper's Q1/Q2/Q3 query builders on certain TPC-H data.

Run on a certain (one-world) database wrapped as a trivial U-relational
database, the translated queries must agree with a direct evaluation of the
SQL semantics coded by hand over the plain tables.
"""

import pytest

from repro.core import Poss, UDatabase, execute_query
from repro.relational.types import Date
from repro.tpch import ALL_QUERIES, generate, q1, q2, q3


@pytest.fixture(scope="module")
def certain_db():
    return generate(scale=0.002, seed=11)


@pytest.fixture(scope="module")
def udb(certain_db):
    return UDatabase.from_certain(certain_db)


def index(relation, *names):
    return [relation.schema.resolve(n) for n in names]


class TestQ1:
    def test_matches_hand_evaluation(self, certain_db, udb):
        answer = set(execute_query(q1(), udb).rows)

        customers = {
            row[0]
            for row in certain_db["customer"].rows
            if row[certain_db["customer"].schema.resolve("mktsegment")] == "BUILDING"
        }
        o = certain_db["orders"]
        ok_i, ck_i, od_i, sp_i = index(o, "orderkey", "custkey", "orderdate", "shippriority")
        orders = {
            row[ok_i]: (row[ok_i], row[od_i], row[sp_i])
            for row in o.rows
            if row[ck_i] in customers and row[od_i] > Date("1995-03-15")
        }
        li = certain_db["lineitem"]
        lok_i, sd_i = index(li, "orderkey", "shipdate")
        expected = {
            orders[row[lok_i]]
            for row in li.rows
            if row[lok_i] in orders and row[sd_i] < Date("1995-03-17")
        }
        assert answer == expected

    def test_answer_schema(self, udb):
        answer = execute_query(q1(), udb)
        assert [a.split(".")[-1] for a in answer.schema.names] == [
            "orderkey",
            "orderdate",
            "shippriority",
        ]


class TestQ2:
    def test_matches_hand_evaluation(self, certain_db, udb):
        answer = set(execute_query(q2(), udb).rows)
        li = certain_db["lineitem"]
        sd_i, d_i, q_i, e_i = index(
            li, "shipdate", "discount", "quantity", "extendedprice"
        )
        expected = {
            (row[e_i],)
            for row in li.rows
            if Date("1994-01-01") <= row[sd_i] <= Date("1996-01-01")
            and 0.05 <= row[d_i] <= 0.08
            and row[q_i] < 24
        }
        assert answer == expected

    def test_nonempty_at_this_scale(self, udb):
        assert len(execute_query(q2(), udb)) > 0


class TestQ3:
    def test_matches_hand_evaluation(self, certain_db, udb):
        answer = set(execute_query(q3(), udb).rows)

        nations = {row[0]: row[1] for row in certain_db["nation"].rows}
        germany = {k for k, v in nations.items() if v == "GERMANY"}
        iraq = {k for k, v in nations.items() if v == "IRAQ"}
        suppliers = {
            row[0]: row[3]
            for row in certain_db["supplier"].rows
            if row[3] in germany
        }
        customers = {
            row[0]
            for row in certain_db["customer"].rows
            if row[3] in iraq
        }
        orders = {
            row[0]
            for row in certain_db["orders"].rows
            if row[1] in customers
        }
        li = certain_db["lineitem"]
        lok_i, ls_i = index(li, "orderkey", "suppkey")
        expected = set()
        for row in li.rows:
            if row[ls_i] in suppliers and row[lok_i] in orders:
                expected.add(("GERMANY", "IRAQ"))
        assert answer == expected

    def test_builders_are_fresh_trees(self):
        assert q3() is not q3()


class TestAllQueries:
    def test_registry_complete(self):
        labels = [label for label, _, _ in ALL_QUERIES]
        assert labels == ["Q1", "Q2", "Q3"]

    def test_inner_variants_unwrapped(self):
        for _label, wrapped, inner in ALL_QUERIES:
            assert isinstance(wrapped(), Poss)
            assert not isinstance(inner(), Poss)
