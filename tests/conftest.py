"""Shared fixtures and oracles for the test suite.

The central correctness oracle: for any positive query Q and U-relational
database U,

    poss(Q)(U)    ==  union over worlds w of Q(w)
    certain(Q)(U) ==  intersection over worlds w of Q(w)

computed by brute-force world enumeration (exponential, used on small
world-sets only).
"""

from __future__ import annotations

from typing import Set, Tuple

import pytest

from repro.core import (
    Descriptor,
    UDatabase,
    UQuery,
    URelation,
    WorldTable,
    evaluate_in_world,
)
from repro.obs import (
    reset_accounting,
    reset_metrics,
    reset_slow_queries,
    reset_workload,
)
from repro.relational import reset_compile_cache, reset_plan_cache

__all__ = ["vehicles_udb", "brute_force_poss", "brute_force_certain"]


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Empty the compile/plan caches and the obs state before every test.

    All of these stores are process-wide; without the reset, any test
    asserting on their counters (or on cold-path behaviour like "the
    first run plans, the second doesn't") would depend on which tests
    happened to run earlier in the collection order.
    """
    reset_compile_cache()
    reset_plan_cache()
    reset_metrics()
    reset_slow_queries()
    reset_workload()
    reset_accounting()
    yield


def build_vehicles_udb() -> UDatabase:
    """The paper's running example (Figure 1): four vehicles, 8 worlds."""
    w = WorldTable({"x": [1, 2], "y": [1, 2], "z": [1, 2]})
    empty = Descriptor()
    u_id = URelation.build(
        [
            (empty, "a", (1,)),
            (Descriptor(x=1), "b", (2,)),
            (Descriptor(x=2), "b", (3,)),
            (Descriptor(x=1), "c", (3,)),
            (Descriptor(x=2), "c", (2,)),
            (empty, "d", (4,)),
        ],
        tid_name="tid_r",
        value_names=["id"],
    )
    u_type = URelation.build(
        [
            (empty, "a", ("Tank",)),
            (empty, "b", ("Transport",)),
            (empty, "c", ("Tank",)),
            (Descriptor(y=1), "d", ("Tank",)),
            (Descriptor(y=2), "d", ("Transport",)),
        ],
        tid_name="tid_r",
        value_names=["type"],
    )
    u_faction = URelation.build(
        [
            (empty, "a", ("Friend",)),
            (empty, "b", ("Friend",)),
            (empty, "c", ("Enemy",)),
            (Descriptor(z=1), "d", ("Friend",)),
            (Descriptor(z=2), "d", ("Enemy",)),
        ],
        tid_name="tid_r",
        value_names=["faction"],
    )
    udb = UDatabase(w)
    udb.add_relation("r", ["id", "type", "faction"], [u_id, u_type, u_faction])
    return udb


@pytest.fixture
def vehicles_udb() -> UDatabase:
    return build_vehicles_udb()


def brute_force_poss(query: UQuery, udb: UDatabase) -> Set[Tuple]:
    """Union of per-world answers (the gold possible-answer semantics)."""
    out: Set[Tuple] = set()
    for _valuation, instances in udb.worlds():
        out |= set(evaluate_in_world(query, instances).rows)
    return out


def brute_force_certain(query: UQuery, udb: UDatabase) -> Set[Tuple]:
    """Intersection of per-world answers (the gold certain-answer semantics)."""
    out = None
    for _valuation, instances in udb.worlds():
        rows = set(evaluate_in_world(query, instances).rows)
        out = rows if out is None else out & rows
    return out or set()
