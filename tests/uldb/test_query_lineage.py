"""Tests for ULDB queries: lineage propagation, erroneous tuples, minimization.

The key Section 5 behaviour under test: ULDB joins can produce *erroneous*
tuples (present in no world) because output lineage only points at input
alternatives without consistency filtering; data minimization removes them
via transitive lineage closure.  U-relations never produce them (ψ).
"""

import pytest

from repro.relational import col, lit
from repro.uldb import (
    ULDB,
    Alternative,
    ULDBRelation,
    XTuple,
    erroneous_alternatives,
    join,
    minimize,
    possible_tuples,
    project,
    select,
    well_formed,
)


@pytest.fixture
def db():
    """Two relations whose uncertainty is coupled through lineage."""
    database = ULDB()
    choice = ULDBRelation("choice", ["which"])
    choice.add(XTuple("w", [Alternative(("left",)), Alternative(("right",))]))
    database.add_relation(choice)

    r = ULDBRelation("r", ["k", "v"])
    r.add(
        XTuple(
            "t1",
            [
                Alternative((1, "a"), lineage=[("choice", "w", 1)]),
                Alternative((2, "b"), lineage=[("choice", "w", 2)]),
            ],
        )
    )
    database.add_relation(r)

    s = ULDBRelation("s", ["k", "w"])
    s.add(
        XTuple(
            "u1",
            [
                Alternative((2, "X"), lineage=[("choice", "w", 1)]),
                Alternative((1, "Y"), lineage=[("choice", "w", 2)]),
            ],
        )
    )
    database.add_relation(s)
    return database


class TestSelect:
    def test_select_keeps_matching(self, db):
        out = select(db, db.get("r"), col("k").eq(lit(1)))
        assert out.alternative_count() == 1
        assert out.xtuples[0].optional  # partially qualified -> optional

    def test_select_lineage_points_to_input(self, db):
        out = select(db, db.get("r"), col("k").eq(lit(1)))
        (alt,) = out.xtuples[0].alternatives
        assert ("r", "t1", 1) in alt.lineage

    def test_select_empty(self, db):
        out = select(db, db.get("r"), col("k").eq(lit(99)))
        assert len(out) == 0


class TestProject:
    def test_project_values(self, db):
        out = project(db, db.get("r"), ["v"])
        values = {alt.values for x in out for alt in x.alternatives}
        assert values == {("a",), ("b",)}

    def test_project_dedupes_within_xtuple(self):
        database = ULDB()
        r = ULDBRelation("r", ["a", "b"])
        r.add(XTuple("t", [Alternative((1, "x")), Alternative((1, "y"))]))
        database.add_relation(r)
        out = project(database, r, ["a"])
        assert out.xtuples[0].alternatives[0].values == (1,)
        assert len(out.xtuples[0].alternatives) == 1


class TestJoinErroneousTuples:
    def test_join_produces_erroneous_tuples(self, db):
        """r.k = s.k matches (1,'a')x(1,'Y') and (2,'b')x(2,'X') — but both
        require contradictory choices of 'w': erroneous."""
        out = join(db, db.get("r"), db.get("s"), col("l.k").eq(col("r.k")))
        assert out.alternative_count() == 2
        bad = erroneous_alternatives(db, out)
        assert len(bad) == 2  # every joined alternative is erroneous

    def test_minimization_removes_them(self, db):
        out = join(db, db.get("r"), db.get("s"), col("l.k").eq(col("r.k")))
        minimized = minimize(db, out)
        assert minimized.alternative_count() == 0

    def test_possible_tuples_unminimized_contains_erroneous(self, db):
        out = join(db, db.get("r"), db.get("s"), col("l.k").eq(col("r.k")))
        raw = possible_tuples(db, out, minimized=False)
        clean = possible_tuples(db, out, minimized=True)
        assert len(raw) == 2 and len(clean) == 0

    def test_join_with_minimize_flag(self, db):
        out = join(
            db, db.get("r"), db.get("s"), col("l.k").eq(col("r.k")),
            minimize_result=True,
        )
        assert out.alternative_count() == 0

    def test_consistent_join_survives(self, db):
        """Joining on the SAME side of the choice keeps valid tuples."""
        out = join(db, db.get("r"), db.get("s"), col("l.v").eq(lit("a")))
        survivors = possible_tuples(db, out, minimized=True)
        # (1,'a') pairs with (2,'X'): both need choice=left -> consistent
        assert (1, "a", 2, "X") in set(survivors.rows)
        assert (1, "a", 1, "Y") not in set(survivors.rows)


class TestWellFormed:
    def test_acyclic_db_is_well_formed(self, db):
        assert well_formed(db)

    def test_cycle_detected(self):
        database = ULDB()
        r = ULDBRelation("r", ["v"])
        r.add(XTuple("t1", [Alternative((1,), lineage=[("r", "t2", 1)])]))
        r.add(XTuple("t2", [Alternative((2,), lineage=[("r", "t1", 1)])]))
        database.add_relation(r)
        assert not well_formed(database)

    def test_external_symbols_allowed(self):
        database = ULDB()
        r = ULDBRelation("r", ["v"])
        r.add(XTuple("t1", [Alternative((1,), lineage=[("ext", "z", 1)])]))
        database.add_relation(r)
        assert well_formed(database)
