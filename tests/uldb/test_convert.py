"""Tests for the ULDB <-> U-relations conversions (Lemma 5.5, Example 5.4)."""

import pytest

from repro.core import Descriptor, UDatabase, URelation, WorldTable
from repro.core.urelation import tid_column
from repro.uldb import (
    ULDB,
    Alternative,
    ULDBRelation,
    XTuple,
    udatabase_to_uldb,
    uldb_to_udatabase,
)


def worldset(udb: UDatabase, name: str = "r"):
    return frozenset(frozenset(i[name].rows) for _, i in udb.worlds())


class TestExample54:
    def test_structure_matches_paper(self, vehicles_udb):
        """The ULDB of Example 5.4: a:1, b:2, c:2 (linked to b), d:4 alts."""
        uldb = udatabase_to_uldb(vehicles_udb)
        r = uldb.get("r")
        by_tid = {x.tid: x for x in r}
        assert len(by_tid["a"].alternatives) == 1
        assert len(by_tid["b"].alternatives) == 2
        assert len(by_tid["c"].alternatives) == 2
        assert len(by_tid["d"].alternatives) == 4  # 2 types x 2 factions

    def test_b_c_coupled_via_lineage(self, vehicles_udb):
        uldb = udatabase_to_uldb(vehicles_udb)
        r = uldb.get("r")
        by_tid = {x.tid: x for x in r}
        b_lineage = [a.lineage for a in by_tid["b"].alternatives]
        c_lineage = [a.lineage for a in by_tid["c"].alternatives]
        # both reference the same selector variable for x
        assert b_lineage[0] and c_lineage[0]
        assert {ref[0] for lin in b_lineage for ref in lin} == {
            ref[0] for lin in c_lineage for ref in lin
        }

    def test_no_xtuple_optional(self, vehicles_udb):
        """All four vehicles exist in every world."""
        uldb = udatabase_to_uldb(vehicles_udb)
        assert not any(x.optional for x in uldb.get("r"))

    def test_world_set_preserved(self, vehicles_udb):
        uldb = udatabase_to_uldb(vehicles_udb)
        uldb_worlds = frozenset(
            frozenset(w["r"].rows) for w in uldb.worlds()
        )
        assert uldb_worlds == worldset(vehicles_udb)


class TestLemma55:
    def test_roundtrip_preserves_world_set(self, vehicles_udb):
        uldb = udatabase_to_uldb(vehicles_udb)
        back = uldb_to_udatabase(uldb)
        assert worldset(back) == worldset(vehicles_udb)

    def test_linear_size(self, vehicles_udb):
        """ULDB -> U-relations is linear: one tuple per alternative."""
        uldb = udatabase_to_uldb(vehicles_udb)
        back = uldb_to_udatabase(uldb)
        (part,) = back.partitions("r")
        assert len(part) == uldb.get("r").alternative_count()

    def test_optional_xtuple_gets_absent_value(self):
        db = ULDB()
        r = ULDBRelation("r", ["v"])
        r.add(XTuple("t", [Alternative(("maybe",))], optional=True))
        db.add_relation(r)
        udb = uldb_to_udatabase(db)
        assert udb.world_count() == 2
        sizes = sorted(len(i["r"]) for _, i in udb.worlds())
        assert sizes == [0, 1]

    def test_erroneous_alternatives_dropped(self):
        db = ULDB()
        r = ULDBRelation("r", ["v"])
        r.add(XTuple("t", [Alternative((1,), lineage=[("nowhere", "z", 1)])]))
        db.add_relation(r)
        udb = uldb_to_udatabase(db)
        (part,) = udb.partitions("r")
        assert len(part) == 0


class TestExponentialDirection:
    def test_or_set_blowup(self):
        """Theorem 5.6's or-set case: independent attributes multiply.

        k independent binary attributes: U-relations store 2k rows, the
        ULDB x-tuple needs 2^k alternatives.
        """
        for k in (2, 3, 4):
            w = WorldTable({f"v{i}": [1, 2] for i in range(k)})
            parts = []
            for i in range(k):
                parts.append(
                    URelation.build(
                        [
                            (Descriptor({f"v{i}": 1}), "t", (0,)),
                            (Descriptor({f"v{i}": 2}), "t", (1,)),
                        ],
                        tid_column("r"),
                        [f"a{i}"],
                    )
                )
            udb = UDatabase(w)
            udb.add_relation("r", [f"a{i}" for i in range(k)], parts)
            u_rows = sum(len(p) for p in udb.partitions("r"))
            uldb = udatabase_to_uldb(udb)
            assert u_rows == 2 * k
            assert uldb.get("r").alternative_count() == 2 ** k
