"""Tests for the ULDB representation: x-tuples, lineage, worlds."""

import pytest

from repro.uldb import ULDB, Alternative, ULDBRelation, XTuple


@pytest.fixture
def db():
    """The paper's Example 5.4 ULDB (vehicles)."""
    database = ULDB()
    r = ULDBRelation("r", ["id", "type", "faction"])
    r.add(XTuple("a", [Alternative((1, "Tank", "Friend"))]))
    r.add(
        XTuple(
            "b",
            [
                Alternative((2, "Transport", "Friend")),
                Alternative((3, "Transport", "Friend")),
            ],
        )
    )
    r.add(
        XTuple(
            "c",
            [
                Alternative((3, "Tank", "Enemy"), lineage=[("r", "b", 1)]),
                Alternative((2, "Tank", "Enemy"), lineage=[("r", "b", 2)]),
            ],
        )
    )
    r.add(
        XTuple(
            "d",
            [
                Alternative((4, "Tank", "Friend")),
                Alternative((4, "Tank", "Enemy")),
                Alternative((4, "Transport", "Friend")),
                Alternative((4, "Transport", "Enemy")),
            ],
        )
    )
    database.add_relation(r)
    return database


class TestStructure:
    def test_alternative_counts(self, db):
        assert db.get("r").alternative_count() == 9
        assert db.total_alternatives() == 9

    def test_empty_xtuple_rejected(self):
        with pytest.raises(ValueError):
            XTuple("t", [])

    def test_arity_checked(self):
        r = ULDBRelation("r", ["a", "b"])
        with pytest.raises(ValueError):
            r.add(XTuple("t", [Alternative((1,))]))

    def test_duplicate_tid_rejected(self):
        r = ULDBRelation("r", ["a"])
        r.add(XTuple("t", [Alternative((1,))]))
        with pytest.raises(ValueError):
            r.add(XTuple("t", [Alternative((2,))]))

    def test_duplicate_relation_rejected(self, db):
        with pytest.raises(ValueError):
            db.add_relation(ULDBRelation("r", ["a"]))

    def test_unknown_relation(self, db):
        with pytest.raises(KeyError):
            db.get("nope")


class TestLineage:
    def test_resolve(self, db):
        alt = db.resolve(("r", "c", 1))
        assert alt.values == (3, "Tank", "Enemy")

    def test_resolve_external_symbol(self, db):
        assert db.resolve(("r", "zz", 1)) is None
        assert db.resolve(("r", "c", 99)) is None

    def test_closure(self, db):
        closure = db.lineage_closure(("r", "c", 1))
        assert ("r", "b", 1) in closure
        assert ("r", "c", 1) in closure

    def test_closure_dangling_is_none(self, db):
        r = db.get("r")
        r.add(XTuple("e", [Alternative((9, "?", "?"), lineage=[("r", "zzz", 1)])]))
        assert db.lineage_closure(("r", "e", 1)) is None

    def test_consistency(self, db):
        # c's alternatives demand different b alternatives: never together
        assert db.closure_consistent([("r", "c", 1)])
        assert not db.closure_consistent([("r", "c", 1), ("r", "c", 2)])
        assert db.closure_consistent([("r", "c", 1), ("r", "b", 1)])
        assert not db.closure_consistent([("r", "c", 1), ("r", "b", 2)])


class TestWorlds:
    def test_world_count_matches_paper(self, db):
        """Example 5.4 represents the Figure 1 world-set: 8 worlds."""
        worlds = list(db.worlds())
        assert len(worlds) == 8

    def test_lineage_couples_b_and_c(self, db):
        """In every world, b and c occupy different positions."""
        for world in db.worlds():
            rows = world["r"].rows
            ids = [row[0] for row in rows]
            assert sorted(ids) == [1, 2, 3, 4]

    def test_optional_xtuple_can_be_absent(self):
        database = ULDB()
        r = ULDBRelation("r", ["v"])
        r.add(XTuple("t", [Alternative(("present",))], optional=True))
        database.add_relation(r)
        sizes = sorted(len(w["r"]) for w in database.worlds())
        assert sizes == [0, 1]
