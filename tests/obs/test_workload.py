"""Workload intelligence: fingerprints, bounded history, advisory report.

The contract under test, end to end:

* queries that differ only in literals / ``$n`` bindings share one
  fingerprint and aggregate into one history entry;
* ``REPRO_OBS=off`` (``set_enabled(False)``) fully disables the pipeline
  — the history does not grow, accounting does not move;
* the history is LRU-bounded under randomized fingerprint churn;
* the advisory report's top recommendation, built manually via its own
  ``CREATE INDEX`` statement, measurably speeds the repeated query it
  was derived from (access path flips to an index scan *and* warm
  latency improves).
"""

from __future__ import annotations

import json
import statistics
import time

import pytest

from repro.core.udatabase import UDatabase, tid_column
from repro.core.urelation import URelation
from repro.obs import (
    accounting_snapshot,
    configure_workload,
    record_execution,
    set_enabled,
    workload_size,
    workload_snapshot,
)
from repro.obs.report import advisory_report, render_text
from repro.relational.relation import Relation
from repro.sql import execute_sql, fingerprint_sql


def _certain_udb(rows, auto_index=True) -> UDatabase:
    udb = UDatabase(auto_index=auto_index)
    part = URelation.from_certain_rows(rows, tid_column("r"), ["a", "b"])
    udb.add_relation("r", ["a", "b"], [part])
    return udb


def _profile(fingerprint: str, **overrides):
    profile = {
        "fingerprint": fingerprint,
        "plan_key": f"pk_{fingerprint}",
        "cost_class": "scan",
        "relations": ("u_r_a_b",),
        "predicates": (("u_r_a_b", "b", "="),),
        "access_paths": {"seq_scan": 1},
    }
    profile.update(overrides)
    return profile


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def test_literal_variants_and_params_share_one_fingerprint():
    udb = _certain_udb([(i, i % 7) for i in range(60)])
    for v in (1, 2, 3):
        execute_sql(f"possible (select a from r where b = {v})", udb)
    execute_sql("possible (select a from r where b = $1)", udb, params=[4])

    history = workload_snapshot()
    assert len(history) == 1
    entry = history[0]
    assert entry["calls"] == 4
    assert entry["fingerprint"] == fingerprint_sql(
        "possible (select a from r where b = 99)"
    )
    assert entry["predicates"] == [
        {"relation": "u_r_a_b", "column": "b", "op": "=", "count": 4}
    ]
    assert sum(entry["access_paths"].values()) == 4


def test_distinct_structure_distinct_fingerprint():
    a = fingerprint_sql("possible (select a from r where b = 1)")
    b = fingerprint_sql("possible (select a from r where a = 1)")
    c = fingerprint_sql("possible (select a from r where b < 1)")
    assert len({a, b, c}) == 3
    assert all(len(f) == 16 for f in (a, b, c))


def test_fingerprint_sql_is_none_for_non_queries():
    assert fingerprint_sql("insert into r values (1, 2)") is None
    assert fingerprint_sql("vacuum") is None
    assert fingerprint_sql("begin") is None


def test_history_tracks_latency_and_rows():
    udb = _certain_udb([(i, i % 5) for i in range(50)])
    for _ in range(3):
        execute_sql("possible (select a from r where b = 2)", udb)
    entry = workload_snapshot()[0]
    assert entry["rows_out"] == 30  # 10 rows x 3 calls
    assert entry["mean_ms"] >= 0
    assert entry["p95_ms"] >= entry["p50_ms"] >= 0
    assert entry["cached_hits"] == 2  # first call planned, rest hit the cache


# ----------------------------------------------------------------------
# the off switch
# ----------------------------------------------------------------------
def test_obs_off_freezes_history_and_accounting():
    udb = _certain_udb([(i, i % 3) for i in range(30)])
    set_enabled(False)
    try:
        for v in (0, 1, 2, 0, 1):
            execute_sql(f"possible (select a from r where b = {v})", udb)
        assert workload_size() == 0
        assert workload_snapshot() == []
        snapshot = accounting_snapshot()
        assert snapshot["by_class"] == {}
        assert snapshot["sessions"] == {}
    finally:
        set_enabled(True)
    # re-enabled: the same pipeline records again immediately
    execute_sql("possible (select a from r where b = 1)", udb)
    assert workload_size() == 1


# ----------------------------------------------------------------------
# bounded history
# ----------------------------------------------------------------------
def test_history_is_lru_bounded_under_fingerprint_churn():
    previous = configure_workload(16)
    try:
        import random

        rng = random.Random(1234)
        fingerprints = [f"fp{i:04d}" for i in range(200)]
        rng.shuffle(fingerprints)
        for fp in fingerprints:
            for _ in range(rng.randrange(1, 4)):
                record_execution(_profile(fp), seconds=0.001, rows=1, cached=True)
            assert workload_size() <= 16
        assert workload_size() == 16
        # the survivors are exactly the 16 most recently touched
        surviving = {entry["fingerprint"] for entry in workload_snapshot()}
        assert surviving == set(fingerprints[-16:])
    finally:
        configure_workload(previous)


def test_hot_fingerprint_survives_churn():
    previous = configure_workload(8)
    try:
        hot = _profile("fp_hot")
        for i in range(100):
            record_execution(hot, seconds=0.001, rows=1, cached=True)
            record_execution(_profile(f"fp{i:04d}"), seconds=0.001, rows=1, cached=True)
        surviving = {entry["fingerprint"] for entry in workload_snapshot()}
        assert "fp_hot" in surviving
        assert workload_size() == 8
    finally:
        configure_workload(previous)


# ----------------------------------------------------------------------
# the advisory report
# ----------------------------------------------------------------------
def test_advisory_report_recommends_index_that_speeds_the_query():
    # auto-indexing off: the repeated point filter must actually seq-scan
    rows = [(i, i % 97) for i in range(4000)]
    udb = _certain_udb(rows, auto_index=False)
    sql = "possible (select a from r where b = 13)"
    for _ in range(3):
        execute_sql(sql, udb)

    report = advisory_report()
    assert report["recommendations"], "a repeated seq-scanned filter must advise"
    top = report["recommendations"][0]
    assert top["rank"] == 1
    assert top["relation"] == "u_r_a_b"
    assert top["columns"] == ["b"]
    assert top["kind"] == "hash"
    evidence = top["evidence"]
    assert evidence["calls"] == 3
    assert evidence["access_paths"].get("seq_scan")
    assert {"relation": "u_r_a_b", "column": "b", "op": "=", "count": 3} in evidence[
        "predicates"
    ]

    def median_warm_ms(runs=5):
        times = []
        for _ in range(runs):
            started = time.perf_counter()
            execute_sql(sql, udb)
            times.append((time.perf_counter() - started) * 1e3)
        return statistics.median(times)

    before = median_warm_ms()
    # recommend-only: the report emits the statement, the operator runs it
    execute_sql(top["statement"], udb)
    after = median_warm_ms()

    entry = workload_snapshot()[0]
    assert entry["access_paths"].get("index_scan"), "plan must flip to the new index"
    assert after < before, f"index made it slower? {after:.3f}ms vs {before:.3f}ms"


def test_advisory_report_flags_estimate_drift():
    drifting = _profile("fp_drift")
    for _ in range(3):
        record_execution(
            drifting, seconds=0.001, rows=500, cached=True, estimated=10, actual=500
        )
    report = advisory_report()
    flagged = [d for d in report["drifting_plans"] if d["fingerprint"] == "fp_drift"]
    assert flagged and flagged[0]["drift"] == pytest.approx(50.0)
    assert flagged[0]["drift_runs"] == 3


def test_advisory_report_merges_supporting_fingerprints():
    for fp in ("fp_one", "fp_two"):
        for _ in range(2):
            record_execution(_profile(fp), seconds=0.002, rows=5, cached=True)
    report = advisory_report()
    assert len(report["recommendations"]) == 1
    rec = report["recommendations"][0]
    assert sorted(rec["supporting_fingerprints"]) == ["fp_one", "fp_two"]
    assert report["history"] == {"fingerprints": 2, "executions": 4}


def test_one_off_queries_never_advise():
    record_execution(_profile("fp_once"), seconds=0.5, rows=1000, cached=False)
    assert advisory_report()["recommendations"] == []


def test_render_text_and_cli_roundtrip(tmp_path, capsys):
    for _ in range(3):
        record_execution(_profile("fp_cli"), seconds=0.002, rows=5, cached=True)
    report = advisory_report()
    text = render_text(report)
    assert "Index recommendations (1):" in text
    assert "CREATE INDEX" in text
    assert "fp_cli" in text

    from repro.obs.report import main

    path = tmp_path / "report.json"
    path.write_text(json.dumps({"ok": True, "report": report}))
    assert main(["--input", str(path)]) == 0
    assert "CREATE INDEX" in capsys.readouterr().out
    assert main(["--input", str(path), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["recommendations"]


# ----------------------------------------------------------------------
# wire ops
# ----------------------------------------------------------------------
def test_workload_and_report_wire_ops():
    import socket

    from repro.server import QueryServer

    udb = _certain_udb([(i, i % 11) for i in range(300)], auto_index=False)
    server = QueryServer(udb, workers=2)
    handle = server.serve_tcp()
    try:
        with socket.create_connection(handle.address, timeout=10) as sock:
            stream = sock.makefile("rwb")

            def rpc(**request):
                stream.write(json.dumps(request).encode() + b"\n")
                stream.flush()
                return json.loads(stream.readline())

            for v in (3, 4, 3):
                answer = rpc(op="query", sql=f"possible (select a from r where b = {v})")
                assert answer["ok"]

            workload = rpc(op="workload")
            assert workload["ok"]
            assert workload["workload"][0]["calls"] == 3
            assert rpc(op="workload", limit=0)["workload"] == []

            report = rpc(op="report")
            assert report["ok"]
            recommendations = report["report"]["recommendations"]
            assert recommendations and recommendations[0]["statement"].startswith(
                "CREATE INDEX"
            )
    finally:
        handle.close()
        server.close()


def test_slowlog_entries_carry_fingerprint_and_plan_key():
    from repro.obs import slow_queries

    udb = _certain_udb([(i, i % 7) for i in range(50)])
    sql = "possible (select a from r where b = 5)"
    execute_sql(sql, udb)
    entries = [e for e in slow_queries() if e.get("attrs", {}).get("sql") == sql]
    assert entries, "the slowlog ring must keep the query's trace"
    attrs = entries[0]["attrs"]
    assert attrs["fingerprint"] == fingerprint_sql(sql)
    assert attrs["plan_key"]
