"""Span trees: nesting, join semantics, the thread-pool bridge."""

import threading
import time

from repro.obs import (
    activate,
    counter,
    current_span,
    current_trace,
    histogram,
    request_trace,
    set_enabled,
    span,
    start_trace,
)
from repro.obs.trace import NOOP_SPAN


def test_no_trace_outside_context():
    assert current_trace() is None
    assert current_span() is NOOP_SPAN


def test_span_is_noop_outside_trace():
    with span("orphan") as sp:
        assert sp is NOOP_SPAN
        sp.set(ignored=True)
    assert NOOP_SPAN.attrs == {}
    assert NOOP_SPAN.children == []


def test_start_trace_nesting_and_to_dict():
    with start_trace("query") as trace:
        assert current_trace() is trace
        assert current_span() is trace.root
        with span("parse", cached=False):
            pass
        with span("execute") as exec_span:
            assert current_span() is exec_span
            with span("plan") as plan_span:
                plan_span.set(cached=True)
        with span("render") as render_span:
            render_span.set(bytes=42)
    assert current_trace() is None
    assert [child.name for child in trace.root.children] == [
        "parse",
        "execute",
        "render",
    ]
    assert trace.root.children[1].children[0].name == "plan"
    assert trace.find("plan").attrs == {"cached": True}

    data = trace.to_dict()
    assert data["name"] == "query"
    assert data["trace_id"] == trace.trace_id
    names = [child["name"] for child in data["children"]]
    assert names == ["parse", "execute", "render"]
    assert data["children"][2]["attrs"] == {"bytes": 42}
    assert data["duration_ms"] >= 0


def test_span_durations_are_monotone():
    with start_trace() as trace:
        with span("work"):
            time.sleep(0.002)
    work = trace.find("work")
    assert work.end is not None
    assert work.duration >= 0.002
    assert trace.duration >= work.duration


def test_request_trace_outermost_owns_inner_joins():
    with request_trace(sql="outer") as outer:
        assert outer is not None
        assert outer.root.attrs["sql"] == "outer"
        with request_trace(sql="inner") as inner:
            # already traced: the nested entry surface joins, not forks
            assert inner is None
            assert current_trace() is outer
    assert current_trace() is None


def test_request_trace_records_query_seconds():
    h = histogram("query_seconds")
    with request_trace(sql="select 1") as trace:
        trace.root.set(cost_class="point")
    assert h.count(cls="point") == 1
    with request_trace(sql="select 2"):
        pass  # no cost_class set -> falls in the "unknown" series
    assert h.count(cls="unknown") == 1


def test_request_trace_disabled_yields_none():
    previous = set_enabled(False)
    try:
        with request_trace(sql="x") as trace:
            assert trace is None
        with start_trace() as t2:
            assert t2 is None
    finally:
        set_enabled(previous)


def test_start_trace_force_overrides_disabled():
    previous = set_enabled(False)
    try:
        with start_trace(force=True) as trace:
            assert trace is not None
            with span("execute"):
                pass
        assert trace.find("execute") is not None
        # forced tracing still must not write metrics while disabled
        assert counter("queries_total").total() == 0
    finally:
        set_enabled(previous)


def test_activate_bridges_worker_threads():
    """Context vars don't cross thread starts; activate() re-installs them."""
    results = {}

    with start_trace() as trace:
        with span("execute") as exec_span:
            def worker():
                results["before"] = current_trace()
                with activate(trace, exec_span):
                    with span("plan") as plan_span:
                        plan_span.set(cached=False)
                        results["inside"] = current_trace()
                results["after"] = current_trace()

            t = threading.Thread(target=worker)
            t.start()
            t.join()

    assert results["before"] is None
    assert results["inside"] is trace
    assert results["after"] is None
    plan = trace.find("plan")
    assert plan is not None
    assert plan in trace.find("execute").children
