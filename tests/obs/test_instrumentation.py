"""Observability hooks in the engine itself: explain traces, the
plan-cache estimate-vs-actual loop, and segment-log health gauges."""

from __future__ import annotations

from repro.core import execute_query
from repro.core.query import Poss, Rel, USelect
from repro.core.translate import explain_query
from repro.obs import gauge, metrics_snapshot
from repro.relational.expressions import col, lit
from repro.relational.physical import HashJoin, SeqScan
from repro.relational.plancache import plan_cache_entries
from repro.relational.relation import Relation
from repro.sql import execute_sql

from tests.conftest import build_vehicles_udb


def _tank_query():
    return Poss(USelect(Rel("r"), col("type").eq(lit("Tank"))))


# ----------------------------------------------------------------------
# explain_analyze(trace=True)
# ----------------------------------------------------------------------
def test_explain_analyze_trace_returns_structured_data():
    from repro.relational.explain import explain_analyze

    left = SeqScan(Relation(["l.k", "l.a"], [(i, i) for i in range(8)]), "l")
    right = SeqScan(Relation(["r.k", "r.b"], [(i, -i) for i in range(4)]), "r")
    plan = HashJoin(left, right, [("l.k", "r.k")])

    result, text, data = explain_analyze(plan, trace=True)
    assert len(result) == 4
    assert "actual rows=" in text

    assert data["name"] == "explain_analyze"
    assert data["trace_id"] >= 1
    execute_span = data["children"][0]
    assert execute_span["name"] == "execute"
    assert execute_span["duration_ms"] >= 0

    operators = data["operators"]
    assert operators["operator"].startswith("Hash Join")
    assert operators["actual_rows"] == 4
    assert len(operators["children"]) == 2
    for child in operators["children"]:
        assert child["operator"].startswith("Seq Scan")


def test_explain_query_analyze_trace():
    udb = build_vehicles_udb()
    text, data = explain_query(_tank_query(), udb, analyze=True, trace=True)
    assert "actual rows=" in text
    assert data["name"] == "explain_analyze"
    assert data["operators"]["actual_rows"] is not None
    # estimate and actual are both present on every node, so a consumer
    # can compute row-estimate deltas without re-parsing the text
    def walk(node):
        assert "estimated_rows" in node and "actual_rows" in node
        for child in node.get("children", ()):
            walk(child)

    walk(data["operators"])


def test_explain_query_without_trace_keeps_old_shape():
    udb = build_vehicles_udb()
    text = explain_query(_tank_query(), udb, analyze=True)
    assert isinstance(text, str) and "actual rows=" in text
    plain = explain_query(_tank_query(), udb)
    assert isinstance(plain, str)


# ----------------------------------------------------------------------
# plan cache: estimate-vs-actual feedback
# ----------------------------------------------------------------------
def test_plan_cache_records_observed_rows():
    udb = build_vehicles_udb()
    query = _tank_query()
    execute_query(query, udb)
    entries = plan_cache_entries()
    assert len(entries) == 1
    entry = entries[0]
    assert entry["observed_runs"] == 1
    assert entry["observed_rows"] is not None
    assert entry["estimated_rows"] is not None
    assert entry["cost_class"] in ("point", "scan", "join", "heavy")

    execute_query(query, udb)
    entry = plan_cache_entries()[0]
    assert entry["observed_runs"] == 2
    assert entry["hits"] >= 1


def test_plan_cache_entries_are_mru_first():
    udb = build_vehicles_udb()
    first = _tank_query()
    second = Poss(USelect(Rel("r"), col("faction").eq(lit("Enemy"))))
    execute_query(first, udb)
    execute_query(second, udb)
    execute_query(first, udb)  # touch: back to the front
    entries = plan_cache_entries()
    assert len(entries) == 2
    assert entries[0]["hits"] == 1  # the re-run entry leads
    assert entries[1]["hits"] == 0


# ----------------------------------------------------------------------
# segment-log health
# ----------------------------------------------------------------------
def test_segment_health_untouched_partitions():
    udb = build_vehicles_udb()
    health = udb.segment_health(publish=False)
    assert set(health) == {"r/part0", "r/part1", "r/part2"}
    for entry in health.values():
        assert entry["segment_count"] == 1
        assert entry["live_rows"] > 0
        assert entry["deleted_rows"] == 0
        assert entry["deleted_ratio"] == 0.0
    # publish=False must not create the gauges
    assert "segment_count" not in metrics_snapshot()["gauges"]


def test_segment_health_tracks_dml():
    udb = build_vehicles_udb()
    execute_sql("insert into r values (9, 'Tank', 'Friend')", udb)
    execute_sql("insert into r values (10, 'Jeep', 'Enemy')", udb)
    execute_sql("delete from r where id = 9", udb)

    health = udb.segment_health()
    for entry in health.values():
        assert entry["segment_count"] >= 2  # base + appended delta(s)
        assert entry["deleted_rows"] >= 1
        assert 0.0 < entry["deleted_ratio"] < 1.0

    # published as labeled gauges for the metrics snapshot
    for key, entry in health.items():
        assert gauge("segment_count").value(partition=key) == entry["segment_count"]
        assert gauge("segment_live_rows").value(partition=key) == entry["live_rows"]
        assert gauge("segment_deleted_ratio").value(partition=key) == (
            entry["deleted_ratio"]
        )
