"""Resource accounting: per-session and per-cost-class tallies."""

from __future__ import annotations

import pytest

from repro.obs import (
    accounting_snapshot,
    record_render,
    record_statement,
    record_wait,
    register_session,
    reset_accounting,
    set_enabled,
)
from repro.obs.accounting import SESSION_LIMIT


def test_per_session_and_per_class_tallies():
    sid = register_session()
    record_statement(sid, "point", rows=10, seconds=0.002)
    record_statement(sid, "point", rows=5, seconds=0.001)
    record_statement(sid, "join", rows=100, seconds=0.050)
    record_render(sid, 2048, "point")

    snapshot = accounting_snapshot()
    point = snapshot["by_class"]["point"]
    assert point["queries"] == 2
    assert point["rows"] == 15
    assert point["bytes_rendered"] == 2048
    assert point["execute_ms"] == pytest.approx(3.0)
    join = snapshot["by_class"]["join"]
    assert join["queries"] == 1 and join["rows"] == 100

    session = snapshot["sessions"][sid]
    assert session["queries"] == 3
    assert session["rows"] == 115
    assert session["bytes_rendered"] == 2048
    assert session["execute_ms"] == pytest.approx(53.0)


def test_unknown_cost_class_tallies_as_cold():
    sid = register_session()
    record_statement(sid, None, rows=1, seconds=0.001)
    snapshot = accounting_snapshot()
    assert snapshot["by_class"]["cold"]["queries"] == 1


def test_record_wait_is_class_level_only():
    record_wait("heavy", 0.25)
    snapshot = accounting_snapshot()
    assert snapshot["by_class"]["heavy"]["queue_ms"] == pytest.approx(250.0)
    assert snapshot["by_class"]["heavy"]["queries"] == 0
    assert snapshot["sessions"] == {}


def test_sessions_are_lru_bounded():
    ids = [register_session() for _ in range(SESSION_LIMIT + 20)]
    for sid in ids:
        record_statement(sid, "point", rows=1, seconds=0.0)
    sessions = accounting_snapshot()["sessions"]
    assert len(sessions) == SESSION_LIMIT
    # the oldest twenty fell off; the newest survive
    assert ids[0] not in sessions and ids[-1] in sessions
    # class-level tallies saw every statement regardless of session eviction
    assert accounting_snapshot()["by_class"]["point"]["queries"] == len(ids)


def test_disabled_accounting_records_nothing():
    set_enabled(False)
    try:
        sid = register_session()  # ids still issue (sessions must construct)
        assert isinstance(sid, int)
        record_statement(sid, "point", rows=10, seconds=0.01)
        record_render(sid, 512, "point")
        record_wait("point", 0.1)
        snapshot = accounting_snapshot()
        assert snapshot["by_class"] == {} and snapshot["sessions"] == {}
    finally:
        set_enabled(True)


def test_reset_accounting_clears_everything():
    sid = register_session()
    record_statement(sid, "scan", rows=3, seconds=0.001)
    reset_accounting()
    assert accounting_snapshot() == {"by_class": {}, "sessions": {}}


def test_server_stats_surfaces_accounting():
    from repro.server import QueryServer

    from tests.conftest import build_vehicles_udb

    server = QueryServer(build_vehicles_udb(), workers=2)
    try:
        session = server.session()
        session.execute("possible (select id from r where type = 'Tank')")
        session.execute("possible (select id from r where type = 'Tank')")
        stats = server.stats()
        accounting = stats["accounting"]
        assert sum(t["queries"] for t in accounting["by_class"].values()) == 2
        per_session = accounting["sessions"][session.accounting_id]
        assert per_session["queries"] == 2
        assert per_session["rows"] > 0
        assert per_session["execute_ms"] > 0
    finally:
        server.close()
