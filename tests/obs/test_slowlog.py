"""The slow-query log: N-slowest retention and the warn threshold."""

import logging
import time

from repro.obs import slow_queries
from repro.obs.slowlog import DEFAULT_CAPACITY, configure, record
from repro.obs.trace import Trace


def _finished_trace(seconds: float, sql: str = "select 1", cost_class: str = "scan"):
    trace = Trace("query")
    trace.root.set(sql=sql, cost_class=cost_class)
    trace.root.end = trace.root.start + seconds
    return trace


def test_keeps_n_slowest_sorted():
    configure(capacity=3, threshold=10.0)
    for ms in (5, 1, 9, 3, 7):
        record(_finished_trace(ms / 1000, sql=f"q{ms}"))
    kept = slow_queries()
    assert [entry["attrs"]["sql"] for entry in kept] == ["q9", "q7", "q5"]
    assert kept[0]["duration_ms"] >= kept[-1]["duration_ms"]


def test_limit_truncates():
    configure(threshold=10.0)
    for ms in (2, 4, 6):
        record(_finished_trace(ms / 1000))
    assert len(slow_queries(limit=2)) == 2


def test_threshold_emits_warning(caplog):
    configure(threshold=0.05)
    with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
        record(_finished_trace(0.01, sql="fast"))
        record(_finished_trace(0.2, sql="slow join", cost_class="join"))
    lines = [rec.getMessage() for rec in caplog.records]
    assert len(lines) == 1
    assert "slow query" in lines[0]
    assert "class=join" in lines[0]
    assert "'slow join'" in lines[0]


def test_payload_embeds_span_tree():
    configure(threshold=10.0)
    trace = _finished_trace(0.02)
    from repro.obs.trace import Span

    child = Span("execute")
    child.finish()
    trace.root.children.append(child)
    record(trace)
    entry = slow_queries()[0]
    assert entry["trace_id"] == trace.trace_id
    assert entry["children"][0]["name"] == "execute"


def test_reset_restores_defaults():
    from repro.obs import reset_slow_queries
    from repro.obs import slowlog

    configure(capacity=2, threshold=0.001)
    record(_finished_trace(0.01))
    reset_slow_queries()
    assert slow_queries() == []
    assert slowlog._capacity == DEFAULT_CAPACITY
    assert slowlog._threshold == slowlog.DEFAULT_THRESHOLD


def test_shrinking_capacity_evicts_fastest():
    configure(capacity=5, threshold=10.0)
    for ms in (1, 2, 3, 4, 5):
        record(_finished_trace(ms / 1000, sql=f"q{ms}"))
    configure(capacity=2)
    assert [e["attrs"]["sql"] for e in slow_queries()] == ["q5", "q4"]
