"""The metrics registry: counters, gauges, histograms, exposition."""

import threading

import pytest

from repro.obs import (
    counter,
    enabled,
    gauge,
    histogram,
    metrics_snapshot,
    registry,
    render_prometheus,
    set_enabled,
)
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


def test_counter_inc_and_labels():
    c = counter("requests_total")
    c.inc()
    c.inc(2)
    c.inc(cls="join")
    c.inc(cls="join")
    assert c.value() == 3
    assert c.value(cls="join") == 2
    assert c.total() == 5


def test_label_order_is_canonical():
    c = counter("ordered_total")
    c.inc(a="1", b="2")
    c.inc(b="2", a="1")
    assert c.value(a="1", b="2") == 2
    assert c.snapshot() == {"a=1,b=2": 2}


def test_cls_spells_class():
    c = counter("classy_total")
    c.inc(cls="point")
    assert c.snapshot() == {"class=point": 1}
    assert 'classy_total{class="point"} 1' in render_prometheus()


def test_gauge_set_and_add():
    g = gauge("depth")
    g.set(5)
    g.add(-2)
    assert g.value() == 3
    g.set(7, partition="r/part0")
    assert g.value(partition="r/part0") == 7


def test_histogram_percentiles_bracket_observations():
    h = histogram("lat_seconds")
    for value in (0.001, 0.002, 0.003, 0.004, 0.100):
        h.observe(value)
    assert h.count() == 5
    p50 = h.percentile(50)
    p99 = h.percentile(99)
    assert 0.001 <= p50 <= 0.01
    assert p50 < p99 <= 0.100
    snap = h.snapshot()[""]
    assert snap["count"] == 5
    assert snap["min"] == 0.001
    assert snap["max"] == 0.100


def test_histogram_percentile_empty_is_none():
    h = histogram("empty_seconds")
    assert h.percentile(50) is None


def test_histogram_single_observation_percentiles_exact():
    h = histogram("single_seconds")
    h.observe(0.42)
    # min/max clamping pins every percentile of a 1-sample series
    assert h.percentile(50) == pytest.approx(0.42)
    assert h.percentile(99) == pytest.approx(0.42)


def test_snapshot_shape():
    counter("a_total").inc()
    gauge("b").set(1)
    histogram("c_seconds").observe(0.01)
    snap = metrics_snapshot()
    assert snap["counters"]["a_total"] == {"": 1}
    assert snap["gauges"]["b"] == {"": 1}
    series = snap["histograms"]["c_seconds"][""]
    assert {"count", "sum", "min", "max", "p50", "p95", "p99"} <= set(series)


def test_prometheus_exposition_histogram_buckets():
    h = histogram("h_seconds")
    h.observe(0.0002, cls="point")
    text = render_prometheus()
    assert "# TYPE h_seconds histogram" in text
    assert 'h_seconds_bucket{class="point",le="+Inf"} 1' in text
    assert 'h_seconds_count{class="point"} 1' in text
    # cumulative: every bucket at or above the owning one counts the obs
    assert f'le="{DEFAULT_BUCKETS[-1]}"' in text


def test_type_clash_is_an_error():
    counter("clashing")
    with pytest.raises(TypeError):
        gauge("clashing")


def test_get_or_create_returns_same_object():
    assert counter("same_total") is counter("same_total")
    assert registry().counter("same_total") is counter("same_total")


def test_disabled_updates_are_noops():
    previous = set_enabled(False)
    try:
        assert not enabled()
        counter("dark_total").inc()
        gauge("dark").set(9)
        histogram("dark_seconds").observe(0.5)
        assert counter("dark_total").value() == 0
        assert gauge("dark").value() == 0
        assert histogram("dark_seconds").count() == 0
        # metrics that never recorded stay out of both exports
        assert metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert render_prometheus() == ""
    finally:
        set_enabled(previous)
    assert enabled() == previous


def test_exact_counts_under_threads():
    c = counter("hammered_total")
    threads = [
        threading.Thread(target=lambda: [c.inc(cls="t") for _ in range(5000)])
        for _ in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value(cls="t") == 30000


def test_isolated_registry_reset():
    reg = MetricsRegistry()
    reg.counter("x_total").inc()
    assert reg.snapshot()["counters"]["x_total"] == {"": 1}
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
