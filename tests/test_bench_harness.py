"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench import Table, format_seconds, geometric_series, median_time, timed


class TestTiming:
    def test_timed_returns_result(self):
        elapsed, result = timed(lambda: 41 + 1)
        assert result == 42
        assert elapsed >= 0

    def test_median_time(self):
        calls = []
        elapsed, result = median_time(lambda: calls.append(1) or "done", repeats=5)
        assert result == "done"
        assert len(calls) == 6  # 1 warm-up + 5 timed runs
        assert elapsed >= 0

    def test_median_time_warmup_excluded(self):
        calls = []
        median_time(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5  # 3 warm-ups + 2 timed runs

    def test_median_time_no_warmup(self):
        calls = []
        median_time(lambda: calls.append(1), repeats=3, warmup=0)
        assert len(calls) == 3

    def test_median_time_even_repeats_true_median(self, monkeypatch):
        # deterministic "timings" of 1, 2, 4, 8 seconds -> the true median
        # of 4 samples is (2 + 4) / 2 = 3, not the upper-middle sample 4
        import repro.bench.harness as harness

        fake = iter([1.0, 2.0, 4.0, 8.0])
        monkeypatch.setattr(harness, "timed", lambda fn: (next(fake), fn()))
        elapsed, _ = harness.median_time(lambda: None, repeats=4, warmup=0)
        assert elapsed == 3.0

    def test_median_time_minimum_one_repeat(self):
        _, result = median_time(lambda: 7, repeats=0)
        assert result == 7


class TestFormatting:
    def test_format_seconds_scales(self):
        assert format_seconds(0.0000005).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.5) == "2.50s"

    def test_geometric_series(self):
        series = geometric_series(1.0, 100.0, 3)
        assert series[0] == pytest.approx(1.0)
        assert series[1] == pytest.approx(10.0)
        assert series[2] == pytest.approx(100.0)

    def test_geometric_series_single_point(self):
        assert geometric_series(5.0, 50.0, 1) == [5.0]


class TestTable:
    def test_render_contains_everything(self):
        t = Table(["x", "time"], title="demo")
        t.add(0.01, "12ms")
        t.add(0.1, "50ms")
        out = t.render()
        assert "demo" in out
        assert "0.01" in out and "50ms" in out

    def test_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_float_formatting(self):
        t = Table(["v"])
        t.add(1234567.0)
        t.add(0.000001)
        out = t.render()
        assert "1.23e+06" in out or "1.235e+06" in out
        assert "1e-06" in out

    def test_empty_table_renders_header(self):
        t = Table(["col"])
        assert "col" in t.render()

    def test_print_does_not_crash(self, capsys):
        t = Table(["a"])
        t.add(1)
        t.print()
        assert "a" in capsys.readouterr().out
