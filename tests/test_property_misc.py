"""Property-based tests for supporting components: descriptor encodings,
Zipf allocation, CSV round-trips, and expected aggregates vs enumeration."""

import string

from hypothesis import given, settings, strategies as st

from repro.core import Descriptor, UDatabase, URelation, WorldTable
from repro.core.aggregates import expected_count, expected_sum
from repro.core.descriptor import decode_descriptor, encode_descriptor
from repro.core.urelation import tid_column
from repro.relational.csvio import read_csv, write_csv
from repro.relational.relation import Relation
from repro.ugen import dfc_allocation

# ----------------------------------------------------------------------
# descriptor relational encoding round-trips at any width
# ----------------------------------------------------------------------
var_names = st.sampled_from(["x", "y", "z", "u", "v"])


@st.composite
def descriptors(draw):
    chosen = draw(st.lists(var_names, max_size=3, unique=True))
    return Descriptor({v: draw(st.integers(0, 5)) for v in chosen})


@given(descriptors(), st.integers(min_value=3, max_value=8))
@settings(max_examples=200, deadline=None)
def test_descriptor_encoding_roundtrip(descriptor, width):
    assert decode_descriptor(encode_descriptor(descriptor, width)) == descriptor


@given(descriptors(), descriptors())
@settings(max_examples=200, deadline=None)
def test_consistency_is_symmetric(a, b):
    assert a.consistent_with(b) == b.consistent_with(a)


@given(descriptors(), descriptors())
@settings(max_examples=100, deadline=None)
def test_union_extends_both(a, b):
    if a.consistent_with(b):
        u = a.union(b)
        for var in a:
            assert u[var] == a[var]
        for var in b:
            assert u[var] == b[var]


# ----------------------------------------------------------------------
# Zipf allocation covers all fields for any (n, z)
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=5000),
    st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=200, deadline=None)
def test_zipf_allocation_covers_exactly(n, z):
    allocation = dfc_allocation(n, z)
    assert sum(dfc * count for dfc, count in allocation.items()) == n
    assert all(count > 0 for count in allocation.values())
    assert all(dfc >= 1 for dfc in allocation)


# ----------------------------------------------------------------------
# CSV round-trips for arbitrary typed relations
# ----------------------------------------------------------------------
_int_cells = st.one_of(st.none(), st.integers(min_value=-10**6, max_value=10**6))
_str_cells = st.one_of(
    st.none(), st.text(alphabet=string.printable.replace("\r", ""), max_size=20)
)


@given(
    st.integers(min_value=0, max_value=10).flatmap(
        lambda n: st.tuples(
            st.lists(_int_cells, min_size=n, max_size=n),
            st.lists(_str_cells, min_size=n, max_size=n),
        )
    )
)
@settings(max_examples=100, deadline=None)
def test_csv_roundtrip(columns):
    """Homogeneously typed columns round-trip exactly (mixed columns are
    rejected by write_csv — covered in the unit tests)."""
    import pathlib
    import tempfile

    ints, texts = columns
    relation = Relation(["a", "b"], list(zip(ints, texts)))
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "r.csv"
        write_csv(relation, path)
        back = read_csv(path)
    assert back.rows == relation.rows


# ----------------------------------------------------------------------
# expected aggregates equal full-world enumeration
# ----------------------------------------------------------------------
@st.composite
def small_results(draw):
    world = WorldTable({"x": [1, 2], "y": [1, 2]})
    n = draw(st.integers(min_value=1, max_value=4))
    triples = []
    for tid in range(n):
        kind = draw(st.sampled_from(["certain", "x", "y", "xy"]))
        value = draw(st.integers(0, 9))
        if kind == "certain":
            triples.append((Descriptor(), tid, (value,)))
        elif kind == "x":
            triples.append((Descriptor(x=draw(st.sampled_from([1, 2]))), tid, (value,)))
        elif kind == "y":
            triples.append((Descriptor(y=draw(st.sampled_from([1, 2]))), tid, (value,)))
        else:
            triples.append(
                (
                    Descriptor(
                        x=draw(st.sampled_from([1, 2])),
                        y=draw(st.sampled_from([1, 2])),
                    ),
                    tid,
                    (value,),
                )
            )
    return URelation.build(triples, tid_column("r"), ["v"]), world


@given(small_results())
@settings(max_examples=100, deadline=None)
def test_expected_aggregates_match_enumeration(setup):
    result, world = setup
    triples = [(d, v) for d, _t, v in result]

    exp_count = 0.0
    exp_sum = 0.0
    for valuation in world.valuations():
        p = world.valuation_probability(valuation)
        present = {v for d, v in triples if d.extended_by(valuation)}
        exp_count += p * len(present)
        exp_sum += p * sum(v[0] for v in present)

    assert abs(expected_count(result, world) - exp_count) < 1e-9
    assert abs(expected_sum(result, "v", world) - exp_sum) < 1e-9
