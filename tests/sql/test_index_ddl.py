"""CREATE INDEX / DROP INDEX through the SQL layer."""

from __future__ import annotations

import pytest

from repro.core.descriptor import Descriptor
from repro.core.udatabase import UDatabase
from repro.core.urelation import URelation, tid_column
from repro.core.worldtable import WorldTable
from repro.relational.index import indexes_on
from repro.sql import CreateIndex, DropIndex, SqlSyntaxError, execute_sql, parse


class TestParsing:
    def test_create_index_default_kind(self):
        stmt = parse("CREATE INDEX idx_a ON u_r_id (id)")
        assert stmt == CreateIndex("idx_a", "u_r_id", ("id",), "hash")

    def test_create_index_multi_column_sorted(self):
        stmt = parse("create index i on t (a, b) using sorted")
        assert stmt == CreateIndex("i", "t", ("a", "b"), "sorted")

    def test_create_index_using_hash(self):
        assert parse("create index i on t (a) using hash").kind == "hash"

    def test_drop_index(self):
        assert parse("DROP INDEX idx_a") == DropIndex("idx_a")

    def test_bad_kind_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("create index i on t (a) using btree")

    def test_missing_pieces_rejected(self):
        for sql in (
            "create index on t (a)",
            "create index i t (a)",
            "create index i on t",
            "drop index",
            "create index i on t (a) trailing",
        ):
            with pytest.raises(SqlSyntaxError):
                parse(sql)

    def test_queries_still_parse(self):
        from repro.core.query import Poss

        stmt = parse("possible (select id from r where id > 1)")
        assert isinstance(stmt, Poss)


def small_udb() -> UDatabase:
    world = WorldTable()
    world.add_variable("x", [1, 2])
    udb = UDatabase(world, auto_index=False)
    part = URelation.build(
        [
            (Descriptor({"x": 1}), 1, (10,)),
            (Descriptor({"x": 2}), 1, (11,)),
            (Descriptor(), 2, (20,)),
        ],
        tid_column("r"),
        ["id"],
    )
    udb.add_relation("r", ["id"], [part])
    return udb


class TestExecution:
    def test_create_register_and_drop(self):
        udb = small_udb()
        index = execute_sql("create index idx_r_id on u_r_id (id) using sorted", udb)
        assert index.kind == "sorted"
        db = udb.to_database()
        assert "idx_r_id" in db.indexes
        assert index in indexes_on(db.get("u_r_id"))
        execute_sql("drop index idx_r_id", udb)
        assert "idx_r_id" not in udb.to_database().indexes
        assert index not in indexes_on(db.get("u_r_id"))

    def test_recreate_identical_is_idempotent(self):
        udb = small_udb()
        a = execute_sql("create index i on u_r_id (id)", udb)
        b = execute_sql("create index i on u_r_id (id)", udb)
        assert a is b

    def test_name_collision_with_different_definition_errors(self):
        udb = small_udb()
        execute_sql("create index i on u_r_id (id)", udb)
        with pytest.raises(KeyError):
            execute_sql("create index i on u_r_id (id) using sorted", udb)

    def test_drop_unknown_raises(self):
        with pytest.raises(KeyError):
            execute_sql("drop index nope", small_udb())

    def test_create_on_unknown_table_raises(self):
        with pytest.raises(KeyError):
            execute_sql("create index i on missing (id)", small_udb())

    def test_index_used_by_subsequent_query(self):
        udb = small_udb()
        before = execute_sql("possible (select id from r where id = 10)", udb)
        execute_sql("create index idx_r_id on u_r_id (id)", udb)
        after = execute_sql("possible (select id from r where id = 10)", udb)
        assert before == after
        # the planner can now see the access path on the partition scan
        part = udb.partitions("r")[0]
        assert any(i.columns == ("id",) for i in indexes_on(part.relation))

    def test_world_table_indexable(self):
        udb = small_udb()
        index = execute_sql("create index idx_w on w (var)", udb)
        assert index.columns == ("var",)
