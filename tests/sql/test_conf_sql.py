"""The ``conf (...)`` SQL surface: parsing, options, end-to-end execution."""

from __future__ import annotations

import pytest

from repro.core import Conf
from repro.core.probability import ConfidenceAnswer
from repro.sql import SqlSyntaxError, execute_sql, parse, prepare
from tests.conftest import build_vehicles_udb


class TestParsing:
    def test_defaults(self):
        statement = parse("conf (select type from r)")
        assert isinstance(statement, Conf)
        assert statement.method == "auto"
        assert statement.epsilon == 0.01
        assert statement.delta == 0.05
        assert statement.seed == 0
        assert statement.attributes[-1] == "conf"

    def test_all_options(self):
        statement = parse(
            "conf (select type from r) method approx epsilon 0.02 delta 0.1 seed 7"
        )
        assert statement.method == "approx"
        assert statement.epsilon == 0.02
        assert statement.delta == 0.1
        assert statement.seed == 7

    def test_option_order_is_free(self):
        statement = parse("conf (select type from r) seed 3 method exact")
        assert statement.method == "exact"
        assert statement.seed == 3

    def test_unknown_method_rejected(self):
        with pytest.raises((SqlSyntaxError, ValueError)):
            parse("conf (select type from r) method magic")

    def test_duplicate_option_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("conf (select type from r) seed 1 seed 2")

    def test_fractional_seed_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("conf (select type from r) seed 1.5")

    def test_conf_of_certain_rejected(self):
        with pytest.raises(ValueError):
            parse("conf (certain (select type from r))")

    def test_conf_wraps_a_bare_select_only(self):
        # the grammar is CONF '(' select ')': modality nesting happens at
        # the query level (Conf unwraps Poss), not in SQL text
        with pytest.raises(SqlSyntaxError):
            parse("conf (possible (select type from r))")


class TestExecution:
    @pytest.fixture()
    def udb(self):
        return build_vehicles_udb()

    def test_end_to_end(self, udb):
        answer = execute_sql(
            "conf (select id from r where type = 'Tank') method exact", udb
        )
        assert isinstance(answer, ConfidenceAnswer)
        assert answer.schema.names == ["id", "conf"]
        # Figure 1: vehicle a (id 1) is certainly a Tank; ids 2 and 3 are
        # Tanks in the x=2 / x=1 halves, and id 4 in the y=1 half
        by_id = dict(answer.rows)
        assert by_id[1] == pytest.approx(1.0)
        assert by_id[2] == pytest.approx(0.5)
        assert by_id[3] == pytest.approx(0.5)
        assert by_id[4] == pytest.approx(0.5)
        confs = [row[-1] for row in answer.rows]
        assert confs == sorted(confs, reverse=True)
        assert answer.conf["method"] == "exact"
        assert answer.conf["groups"] == len(answer.rows)

    def test_statement_cache_reuses_parse_and_plan(self, udb):
        sql = "conf (select type from r) method exact"
        first = execute_sql(sql, udb)
        assert sql in udb._statements
        second = execute_sql(sql, udb)
        assert list(first.rows) == list(second.rows)

    def test_prepared_conf_query(self, udb):
        sql = "conf (select id from r where type = $1) method exact"
        prepared = prepare(sql, udb)
        tanks = prepared.run("Tank")
        assert isinstance(tanks, ConfidenceAnswer)
        assert list(tanks.rows) == [
            (1, pytest.approx(1.0)),
            (2, pytest.approx(0.5)),
            (3, pytest.approx(0.5)),
            (4, pytest.approx(0.5)),
        ]
        missing = prepared.run("Submarine")
        assert list(missing.rows) == []

    def test_auto_matches_exact_here(self, udb):
        auto = execute_sql("conf (select type from r)", udb)
        exact = execute_sql("conf (select type from r) method exact", udb)
        assert list(auto.rows) == list(exact.rows)
