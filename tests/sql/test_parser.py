"""Tests for the SQL parser and end-to-end SQL execution."""

import datetime

import pytest

from repro.core import Certain, Poss, Rel, UJoin, UProject, USelect, UUnion
from repro.relational.expressions import Between, Comparison, InList, IsNull, Not, Or
from repro.sql import SqlSyntaxError, execute_sql, parse
from tests.conftest import brute_force_certain, brute_force_poss


class TestParseShape:
    def test_simple_select(self):
        q = parse("select id from r")
        assert isinstance(q, UProject)
        assert q.attributes == ("id",)
        assert isinstance(q.child, Rel)

    def test_star_select(self):
        q = parse("select * from r")
        assert isinstance(q, Rel)

    def test_alias(self):
        q = parse("select c.custkey from customer c")
        rel = q.child
        assert rel.name == "customer" and rel.alias == "c"

    def test_as_alias(self):
        q = parse("select c.custkey from customer as c")
        assert q.child.alias == "c"

    def test_where(self):
        q = parse("select id from r where id > 3")
        assert isinstance(q, UProject)
        assert isinstance(q.child, USelect)

    def test_multiple_tables_join(self):
        q = parse("select a from r, s, t")
        join = q.child
        assert isinstance(join, UJoin)
        assert isinstance(join.left, UJoin)

    def test_possible_wrapper(self):
        q = parse("possible (select id from r)")
        assert isinstance(q, Poss)

    def test_certain_wrapper(self):
        q = parse("certain (select id from r)")
        assert isinstance(q, Certain)

    def test_possible_without_parens(self):
        q = parse("possible select id from r")
        assert isinstance(q, Poss)

    def test_union(self):
        q = parse("select a from r union select b from s")
        assert isinstance(q, UUnion)


class TestPredicates:
    def pred(self, text):
        return parse(f"select a from r where {text}").child.predicate

    def test_comparison_ops(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            p = self.pred(f"a {op} 1")
            assert isinstance(p, Comparison) and p.op == op

    def test_and_or_precedence(self):
        p = self.pred("a = 1 or b = 2 and c = 3")
        assert isinstance(p, Or)  # OR binds loosest

    def test_parentheses(self):
        p = self.pred("(a = 1 or b = 2) and c = 3")
        assert not isinstance(p, Or)

    def test_between(self):
        p = self.pred("a between 0.05 and 0.08")
        assert isinstance(p, Between)

    def test_in_list(self):
        p = self.pred("a in (1, 2, 3)")
        assert isinstance(p, InList) and p.values == frozenset({1, 2, 3})

    def test_not_in(self):
        p = self.pred("a not in (1)")
        assert isinstance(p, Not)

    def test_is_null(self):
        assert isinstance(self.pred("a is null"), IsNull)

    def test_is_not_null(self):
        assert isinstance(self.pred("a is not null"), Not)

    def test_not_predicate(self):
        assert isinstance(self.pred("not a = 1"), Not)

    def test_string_literal(self):
        p = self.pred("mktsegment = 'BUILDING'")
        assert p.right.value == "BUILDING"

    def test_date_shaped_string_becomes_date(self):
        p = self.pred("orderdate > '1995-03-15'")
        assert p.right.value == datetime.date(1995, 3, 15)

    def test_explicit_date_literal(self):
        p = self.pred("orderdate > date '1995-03-15'")
        assert p.right.value == datetime.date(1995, 3, 15)

    def test_numeric_literals(self):
        assert self.pred("a = 24").right.value == 24
        assert self.pred("a = 0.05").right.value == 0.05

    def test_column_to_column(self):
        p = self.pred("c.custkey = o.custkey")
        assert p.left.name == "c.custkey" and p.right.name == "o.custkey"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "select",
            "select from r",
            "select a from",
            "select a from r where",
            "select a from r where a",
            "select a from r where a between 1",
            "select a from r where a = 1 trailing garbage",
            "select a from r where a in ()",
            "possible (select a from r",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse(bad)


class TestExecution:
    def test_possible_sql(self, vehicles_udb):
        answer = execute_sql(
            "possible (select id from r where type = 'Tank' and faction = 'Enemy')",
            vehicles_udb,
        )
        inner = UProject(
            parse("select id from r where type = 'Tank' and faction = 'Enemy'").child,
            ["id"],
        )
        assert set(answer.rows) == brute_force_poss(inner, vehicles_udb)

    def test_certain_sql(self, vehicles_udb):
        answer = execute_sql("certain (select id from r)", vehicles_udb)
        inner = parse("select id from r")
        assert set(answer.rows) == brute_force_certain(inner, vehicles_udb)

    def test_self_join_sql(self, vehicles_udb):
        answer = execute_sql(
            """possible (select s1.id, s2.id from r s1, r s2
                         where s1.type = 'Tank' and s1.faction = 'Enemy'
                           and s2.type = 'Tank' and s2.faction = 'Enemy'
                           and s1.id < s2.id)""",
            vehicles_udb,
        )
        assert set(answer.rows) == {(2, 4), (3, 4)}

    def test_union_sql(self, vehicles_udb):
        answer = execute_sql(
            """possible (select id from r where faction = 'Enemy'
                         union
                         select id from r where type = 'Transport')""",
            vehicles_udb,
        )
        expected = brute_force_poss(
            UUnion(
                parse("select id from r where faction = 'Enemy'"),
                parse("select id from r where type = 'Transport'"),
            ),
            vehicles_udb,
        )
        assert set(answer.rows) == expected

    def test_unwrapped_select_returns_urelation(self, vehicles_udb):
        from repro.core import URelation

        result = execute_sql("select id from r", vehicles_udb)
        assert isinstance(result, URelation)


class TestFigure8Queries:
    """The paper's Q1-Q3 in SQL must agree with the hand-built trees."""

    @pytest.fixture(scope="class")
    def udb(self):
        from repro.ugen import generate_uncertain

        return generate_uncertain(scale=0.001, x=0.01, z=0.25, seed=33).udb

    def test_q1_sql(self, udb):
        from repro.core import execute_query
        from repro.tpch import q1

        sql_answer = execute_sql(
            """possible (select o.orderkey, o.orderdate, o.shippriority
                         from customer c, orders o, lineitem l
                         where c.mktsegment = 'BUILDING'
                           and c.custkey = o.custkey and o.orderkey = l.orderkey
                           and o.orderdate > '1995-03-15'
                           and l.shipdate < '1995-03-17')""",
            udb,
        )
        assert set(sql_answer.rows) == set(execute_query(q1(), udb).rows)

    def test_q2_sql(self, udb):
        from repro.core import execute_query
        from repro.tpch import q2

        sql_answer = execute_sql(
            """possible (select l.extendedprice from lineitem l
                         where l.shipdate between '1994-01-01' and '1996-01-01'
                           and l.discount between 0.05 and 0.08
                           and l.quantity < 24)""",
            udb,
        )
        assert set(sql_answer.rows) == set(execute_query(q2(), udb).rows)

    def test_q3_sql(self, udb):
        from repro.core import execute_query
        from repro.tpch import q3

        sql_answer = execute_sql(
            """possible (select n1.name, n2.name
                         from supplier s, lineitem l, orders o, customer c,
                              nation n1, nation n2
                         where n2.name = 'IRAQ' and n1.name = 'GERMANY'
                           and c.nationkey = n2.nationkey
                           and s.suppkey = l.suppkey
                           and o.orderkey = l.orderkey
                           and c.custkey = o.custkey
                           and s.nationkey = n1.nationkey)""",
            udb,
        )
        assert set(sql_answer.rows) == set(execute_query(q3(), udb).rows)
