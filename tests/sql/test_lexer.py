"""Tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import SqlSyntaxError, TokenKind, tokenize


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.KEYWORD] * 3
        assert all(t.text == "select" for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("customer c.custkey _x a1")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.IDENT] * 4
        assert tokens[1].text == "c.custkey"

    def test_numbers(self):
        tokens = tokenize("24 0.05 .5")
        assert [t.text for t in tokens[:-1]] == ["24", "0.05", ".5"]
        assert all(t.kind == TokenKind.NUMBER for t in tokens[:-1])

    def test_strings_with_escapes(self):
        tokens = tokenize("'BUILDING' 'O''Neil'")
        assert tokens[0].text == "BUILDING"
        assert tokens[1].text == "O'Neil"

    def test_operators_normalized(self):
        tokens = tokenize("= <> != < <= > >=")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["=", "<>", "<>", "<", "<=", ">", ">="]

    def test_punctuation(self):
        tokens = tokenize("( ) , * ")
        assert [t.text for t in tokens[:-1]] == ["(", ")", ",", "*"]

    def test_end_token(self):
        tokens = tokenize("select")
        assert tokens[-1].kind == TokenKind.END

    def test_junk_rejected(self):
        with pytest.raises(SqlSyntaxError, match="position"):
            tokenize("select @")

    def test_positions_recorded(self):
        tokens = tokenize("select x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7
