"""Tests for WSD query evaluation (and its exponential expansion)."""

import pytest

from repro.core import Poss, Rel, UProject, USelect
from repro.relational import col, lit
from repro.wsd import (
    evaluate_certain,
    evaluate_poss,
    expansion_size,
    relevant_components,
    udatabase_to_wsd,
)
from tests.conftest import brute_force_certain, brute_force_poss


@pytest.fixture
def wsd(vehicles_udb):
    return udatabase_to_wsd(vehicles_udb)


class TestEvaluation:
    def test_poss_matches_oracle(self, wsd, vehicles_udb):
        q = UProject(USelect(Rel("r"), col("faction").eq(lit("Enemy"))), ["id"])
        assert set(evaluate_poss(wsd, q).rows) == brute_force_poss(q, vehicles_udb)

    def test_poss_strips_wrapper(self, wsd, vehicles_udb):
        q = Poss(UProject(Rel("r"), ["type"]))
        inner = q.children[0]
        assert set(evaluate_poss(wsd, q).rows) == brute_force_poss(
            inner, vehicles_udb
        )

    def test_certain_matches_oracle(self, wsd, vehicles_udb):
        q = UProject(Rel("r"), ["id"])
        assert set(evaluate_certain(wsd, q).rows) == brute_force_certain(
            q, vehicles_udb
        )

    def test_matches_urelation_answers(self, wsd, vehicles_udb):
        from repro.core import execute_query

        q = UProject(
            USelect(
                Rel("r"),
                col("type").eq(lit("Tank")) & col("faction").eq(lit("Enemy")),
            ),
            ["id"],
        )
        u_answer = set(execute_query(Poss(q), vehicles_udb).rows)
        wsd_answer = set(evaluate_poss(wsd, q).rows)
        assert u_answer == wsd_answer


class TestExpansion:
    def test_relevant_components_all_touch_r(self, wsd):
        q = UProject(Rel("r"), ["id"])
        assert len(relevant_components(wsd, q)) == len(wsd.components)

    def test_expansion_size_is_product(self, wsd):
        q = UProject(Rel("r"), ["id"])
        # 3 binary variables + 1 certain component: 2*2*2*1 = 8
        assert expansion_size(wsd, q) == 8

    def test_expansion_grows_exponentially(self):
        """The c1 x ... x cn blow-up of Example 5.3, in miniature."""
        from repro.core import Descriptor, UDatabase, URelation, WorldTable
        from repro.core.urelation import tid_column

        sizes = []
        for n in (2, 4, 6):
            w = WorldTable({f"c{i}": [1, 2] for i in range(n)})
            triples = []
            for i in range(n):
                triples.append((Descriptor({f"c{i}": 1}), i, (1,)))
                triples.append((Descriptor({f"c{i}": 2}), i, (0,)))
            u = URelation.build(triples, tid_column("r"), ["A"])
            udb = UDatabase(w)
            udb.add_relation("r", ["A"], [u])
            wsd = udatabase_to_wsd(udb)
            sizes.append(expansion_size(wsd, UProject(Rel("r"), ["A"])))
        assert sizes == [4, 16, 64]
