"""Tests for U-relations <-> WSD conversions (Section 5 correspondence)."""

import pytest

from repro.core import Descriptor, UDatabase, URelation, WorldTable
from repro.core.urelation import tid_column
from repro.wsd import udatabase_to_wsd, wsd_to_udatabase


def worldset(udb: UDatabase, name: str = "r"):
    return frozenset(frozenset(i[name].rows) for _, i in udb.worlds())


def wsd_worldset(wsd, name: str = "r"):
    return frozenset(frozenset(w[name].rows) for w in wsd.worlds())


class TestUToWSD:
    def test_vehicles_roundtrip(self, vehicles_udb):
        wsd = udatabase_to_wsd(vehicles_udb)
        assert wsd.world_count() == 8
        assert wsd_worldset(wsd) == worldset(vehicles_udb)

    def test_component_per_variable(self, vehicles_udb):
        wsd = udatabase_to_wsd(vehicles_udb)
        # x, y, z components + one certain component
        assert len(wsd.components) == 4

    def test_normalizes_wide_descriptors_first(self):
        """Figure 5: a 2-pair descriptor database still converts correctly."""
        w = WorldTable({"c1": [1, 2], "c2": [1, 2]})
        u = URelation.build(
            [
                (Descriptor(c1=1), "t1", ("a1",)),
                (Descriptor(c1=1, c2=2), "t2", ("a2",)),
                (Descriptor(c1=2), "t2", ("a3",)),
            ],
            tid_column("r"),
            ["A"],
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["A"], [u])
        wsd = udatabase_to_wsd(udb)
        assert wsd_worldset(wsd) == worldset(udb)

    def test_figure5c_shape(self):
        """The fused c1+c2 component has 4 local worlds (2 x 2), Figure 5(c)."""
        w = WorldTable({"c1": [1, 2], "c2": [1, 2]})
        u = URelation.build(
            [
                (Descriptor(c1=1), "t1", ("a1",)),
                (Descriptor(c1=1, c2=2), "t2", ("a2",)),
                (Descriptor(c1=2), "t2", ("a3",)),
            ],
            tid_column("r"),
            ["A"],
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["A"], [u])
        wsd = udatabase_to_wsd(udb)
        assert wsd.max_local_worlds() == 4


class TestWSDToU:
    def test_roundtrip_both_ways(self, vehicles_udb):
        wsd = udatabase_to_wsd(vehicles_udb)
        back = wsd_to_udatabase(wsd)
        assert worldset(back) == worldset(vehicles_udb)

    def test_linear_size(self, vehicles_udb):
        """WSD -> U-relations is the linear direction (Section 5)."""
        wsd = udatabase_to_wsd(vehicles_udb)
        back = wsd_to_udatabase(wsd)
        u_rows = sum(
            len(p) for n in back.relation_names() for p in back.partitions(n)
        )
        assert u_rows <= wsd.size_cells() + 4  # one row per defined cell

    def test_result_is_normalized(self, vehicles_udb):
        from repro.core import is_normalized

        wsd = udatabase_to_wsd(vehicles_udb)
        back = wsd_to_udatabase(wsd)
        for name in back.relation_names():
            assert is_normalized(back.partitions(name))

    def test_singleton_component_is_certain(self):
        from repro.wsd import WSD, Component, Field

        wsd = WSD({"r": ["A"]})
        wsd.add_component(Component([Field("r", 1, "A")], [("only",)]))
        back = wsd_to_udatabase(wsd)
        assert back.world_count() == 1
        (part,) = back.partitions("r")
        assert part.descriptors() == [Descriptor()]
