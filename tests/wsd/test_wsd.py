"""Tests for the WSD representation and its semantics."""

import pytest

from repro.wsd import BOTTOM, Component, Field, WSD


@pytest.fixture
def simple_wsd():
    """Two components over R(A, B): 2 x 3 = 6 worlds."""
    wsd = WSD({"r": ["A", "B"]})
    wsd.add_component(
        Component(
            [Field("r", 1, "A"), Field("r", 1, "B")],
            [("a1", "b1"), ("a2", "b2")],
        )
    )
    wsd.add_component(
        Component([Field("r", 2, "A"), Field("r", 2, "B")],
                  [("x", "y"), ("p", "q"), (BOTTOM, BOTTOM)])
    )
    return wsd


class TestComponent:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Component([Field("r", 1, "A")], [("a", "b")])

    def test_must_have_local_worlds(self):
        with pytest.raises(ValueError):
            Component([Field("r", 1, "A")], [])

    def test_size_cells(self):
        c = Component([Field("r", 1, "A"), Field("r", 2, "A")], [(1, 2), (3, 4)])
        assert c.size_cells() == 4


class TestField:
    def test_equality_and_hash(self):
        assert Field("r", 1, "A") == Field("r", 1, "A")
        assert Field("r", 1, "A") != Field("r", 2, "A")
        assert hash(Field("r", 1, "A")) == hash(Field("r", 1, "A"))

    def test_repr(self):
        assert "r[1].A" in repr(Field("r", 1, "A"))


class TestWSD:
    def test_unknown_relation_rejected(self):
        wsd = WSD({"r": ["A"]})
        with pytest.raises(KeyError):
            wsd.add_component(Component([Field("q", 1, "A")], [("a",)]))

    def test_unknown_attribute_rejected(self):
        wsd = WSD({"r": ["A"]})
        with pytest.raises(KeyError):
            wsd.add_component(Component([Field("r", 1, "Z")], [("a",)]))

    def test_world_count(self, simple_wsd):
        assert simple_wsd.world_count() == 6

    def test_max_local_worlds(self, simple_wsd):
        assert simple_wsd.max_local_worlds() == 3

    def test_size_cells(self, simple_wsd):
        assert simple_wsd.size_cells() == 4 + 6

    def test_instantiate(self, simple_wsd):
        world = simple_wsd.instantiate((0, 0))
        assert set(world["r"].rows) == {("a1", "b1"), ("x", "y")}

    def test_bottom_drops_tuple(self, simple_wsd):
        world = simple_wsd.instantiate((1, 2))
        assert set(world["r"].rows) == {("a2", "b2")}

    def test_worlds_enumeration(self, simple_wsd):
        worlds = list(simple_wsd.worlds())
        assert len(worlds) == 6
        sizes = sorted(len(w["r"]) for w in worlds)
        assert sizes == [1, 1, 2, 2, 2, 2]

    def test_empty_wsd_one_world(self):
        wsd = WSD({"r": ["A"]})
        assert wsd.world_count() == 1
        assert wsd.max_local_worlds() == 1
