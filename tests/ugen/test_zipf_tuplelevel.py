"""Tests for the Zipf DFC allocation and tuple-level conversion."""

import pytest

from repro.core import Descriptor, UDatabase, URelation, WorldTable
from repro.core.urelation import tid_column
from repro.ugen import (
    dfc_allocation,
    tuple_level_relation,
    tuple_level_size,
    tuple_level_udatabase,
)


class TestZipfAllocation:
    def test_covers_all_fields_exactly(self):
        for n in (1, 7, 100, 1234):
            for z in (0.1, 0.25, 0.5):
                allocation = dfc_allocation(n, z)
                assert sum(dfc * count for dfc, count in allocation.items()) == n

    def test_zero_fields_empty(self):
        assert dfc_allocation(0, 0.25) == {}

    def test_invalid_z_rejected(self):
        with pytest.raises(ValueError):
            dfc_allocation(10, 1.5)

    def test_higher_z_more_correlation(self):
        lo = dfc_allocation(1000, 0.1)
        hi = dfc_allocation(1000, 0.5)
        multi_lo = sum(c for d, c in lo.items() if d > 1)
        multi_hi = sum(c for d, c in hi.items() if d > 1)
        assert multi_hi > multi_lo

    def test_most_variables_have_dfc_one(self):
        allocation = dfc_allocation(1000, 0.25)
        assert allocation[1] > sum(c for d, c in allocation.items() if d > 1)

    def test_counts_decrease_with_dfc(self):
        allocation = dfc_allocation(10_000, 0.5)
        dfcs = sorted(allocation)
        counts = [allocation[d] for d in dfcs]
        assert counts == sorted(counts, reverse=True)


@pytest.fixture
def two_partition_udb():
    """Two uncertain attributes on independent variables: 2x2 combos."""
    w = WorldTable({"x": [1, 2], "y": [1, 2]})
    u_a = URelation.build(
        [
            (Descriptor(x=1), 1, ("a1",)),
            (Descriptor(x=2), 1, ("a2",)),
            (Descriptor(), 2, ("a3",)),
        ],
        tid_column("r"),
        ["A"],
    )
    u_b = URelation.build(
        [
            (Descriptor(y=1), 1, ("b1",)),
            (Descriptor(y=2), 1, ("b2",)),
            (Descriptor(), 2, ("b3",)),
        ],
        tid_column("r"),
        ["B"],
    )
    udb = UDatabase(w)
    udb.add_relation("r", ["A", "B"], [u_a, u_b])
    return udb


class TestTupleLevel:
    def test_independent_fields_multiply(self, two_partition_udb):
        tl = tuple_level_relation(two_partition_udb, "r")
        # tuple 1: 2 x 2 combinations; tuple 2: 1
        assert len(tl) == 5

    def test_size_estimate_matches(self, two_partition_udb):
        assert tuple_level_size(two_partition_udb, "r") == 5

    def test_world_set_preserved(self, two_partition_udb):
        tl_udb = tuple_level_udatabase(two_partition_udb)
        before = {frozenset(i["r"].rows) for _, i in two_partition_udb.worlds()}
        after = {frozenset(i["r"].rows) for _, i in tl_udb.worlds()}
        assert before == after

    def test_correlated_fields_filtered(self):
        """Fields on the SAME variable only combine consistently."""
        w = WorldTable({"x": [1, 2]})
        u_a = URelation.build(
            [(Descriptor(x=1), 1, ("a1",)), (Descriptor(x=2), 1, ("a2",))],
            tid_column("r"),
            ["A"],
        )
        u_b = URelation.build(
            [(Descriptor(x=1), 1, ("b1",)), (Descriptor(x=2), 1, ("b2",))],
            tid_column("r"),
            ["B"],
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["A", "B"], [u_a, u_b])
        tl = tuple_level_relation(udb, "r")
        values = {v for _d, _t, v in tl}
        assert values == {("a1", "b1"), ("a2", "b2")}

    def test_limit_caps_output(self, two_partition_udb):
        tl = tuple_level_relation(two_partition_udb, "r", limit=2)
        assert len(tl) == 2

    def test_never_completable_tuple_skipped(self):
        w = WorldTable({"x": [1, 2]})
        u_a = URelation.build(
            [(Descriptor(), 1, ("a1",)), (Descriptor(), 2, ("a2",))],
            tid_column("r"),
            ["A"],
        )
        u_b = URelation.build([(Descriptor(), 1, ("b1",))], tid_column("r"), ["B"])
        udb = UDatabase(w)
        udb.add_relation("r", ["A", "B"], [u_a, u_b])
        tl = tuple_level_relation(udb, "r")
        assert len(tl) == 1

    def test_blowup_is_exponential_in_partitions(self):
        """The 15M-vs-80K phenomenon of Section 6, in miniature."""
        k = 6
        w = WorldTable({f"v{i}": [1, 2, 3] for i in range(k)})
        parts = []
        for i in range(k):
            parts.append(
                URelation.build(
                    [
                        (Descriptor({f"v{i}": j}), 1, (j,))
                        for j in (1, 2, 3)
                    ],
                    tid_column("r"),
                    [f"a{i}"],
                )
            )
        udb = UDatabase(w)
        udb.add_relation("r", [f"a{i}" for i in range(k)], parts)
        attr_rows = sum(len(p) for p in udb.partitions("r"))
        assert attr_rows == 3 * k
        assert tuple_level_size(udb, "r") == 3 ** k
