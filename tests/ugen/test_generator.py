"""Tests for the uncertain TPC-H generator (Section 6 parameters)."""

import pytest

from repro.core import Poss, execute_query
from repro.core.reduction import is_reduced
from repro.tpch import q2
from repro.ugen import KEY_ATTRIBUTES, generate_uncertain


@pytest.fixture(scope="module")
def bundle():
    return generate_uncertain(scale=0.001, x=0.05, z=0.25, seed=9)


class TestStructure:
    def test_all_tables_present(self, bundle):
        assert set(bundle.udb.relation_names()) == set(bundle.certain)

    def test_one_partition_per_attribute(self, bundle):
        for name in bundle.udb.relation_names():
            schema = bundle.udb.logical_schema(name)
            parts = bundle.udb.partitions(name)
            assert len(parts) == len(schema.attributes)
            for part in parts:
                assert len(part.value_names) == 1

    def test_database_is_valid(self, bundle):
        assert bundle.udb.is_valid()

    def test_database_is_reduced(self, bundle):
        # every partition defines every tuple id in every world: reduced
        small = generate_uncertain(
            scale=0.001, x=0.05, z=0.25, seed=9, tables=["nation", "region"]
        )
        assert is_reduced(small.udb)

    def test_keys_stay_certain(self, bundle):
        for name in bundle.udb.relation_names():
            keys = KEY_ATTRIBUTES.get(name, set())
            for part in bundle.udb.partitions(name):
                (attr,) = part.value_names
                if attr in keys:
                    assert all(d.empty for d, _, _ in part)

    def test_normalized_descriptors(self, bundle):
        """The generator produces normal-form databases (Section 4 note)."""
        for name in bundle.udb.relation_names():
            for part in bundle.udb.partitions(name):
                assert part.d_width == 1


class TestParameters:
    def test_zero_uncertainty_is_one_world(self):
        bundle = generate_uncertain(scale=0.001, x=0.0, seed=2, tables=["nation"])
        assert bundle.udb.world_count() == 1
        assert bundle.uncertain_field_count == 0

    def test_uncertainty_ratio_controls_field_count(self):
        lo = generate_uncertain(scale=0.001, x=0.01, seed=2, tables=["customer"])
        hi = generate_uncertain(scale=0.001, x=0.2, seed=2, tables=["customer"])
        assert hi.uncertain_field_count > 3 * lo.uncertain_field_count

    def test_worlds_grow_exponentially_with_x(self):
        lo = generate_uncertain(scale=0.001, x=0.01, seed=2, tables=["customer"])
        hi = generate_uncertain(scale=0.001, x=0.1, seed=2, tables=["customer"])
        assert hi.log10_worlds() > 2 * lo.log10_worlds()

    def test_size_grows_linearly_not_exponentially(self):
        lo = generate_uncertain(scale=0.001, x=0.01, seed=2, tables=["customer"])
        hi = generate_uncertain(scale=0.001, x=0.1, seed=2, tables=["customer"])
        assert hi.representation_rows() < 40 * lo.representation_rows()

    def test_correlation_increases_domains(self):
        lo = generate_uncertain(scale=0.001, x=0.1, z=0.1, seed=2, tables=["orders"])
        hi = generate_uncertain(scale=0.001, x=0.1, z=0.5, seed=2, tables=["orders"])
        assert hi.max_local_worlds() >= lo.max_local_worlds()

    def test_m_bounds_alternatives(self):
        bundle = generate_uncertain(
            scale=0.001, x=0.1, z=0.1, m=3, seed=2, tables=["customer"]
        )
        # DFC-1 variables have at most m domain values
        from repro.ugen.zipf import MAX_DFC

        assert bundle.max_local_worlds() <= 3 ** MAX_DFC

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_uncertain(x=1.5)
        with pytest.raises(ValueError):
            generate_uncertain(x=0.1, z=2.0, tables=["nation"])

    def test_deterministic(self):
        a = generate_uncertain(scale=0.001, x=0.05, seed=4, tables=["nation"])
        b = generate_uncertain(scale=0.001, x=0.05, seed=4, tables=["nation"])
        assert a.log10_worlds() == b.log10_worlds()
        assert a.representation_rows() == b.representation_rows()


class TestWorldSemantics:
    def test_original_world_is_possible(self):
        """Alternative 1 is always the original value, so the certain
        database must be one of the represented worlds."""
        bundle = generate_uncertain(
            scale=0.001, x=0.1, seed=3, tables=["nation", "region"]
        )
        valuation = {v: 1 for v in bundle.udb.world_table.variables()}
        valuation["_t"] = 0
        # domain value 1 maps to combination index 0 which starts with the
        # original field values for every field (combination l=0 cycles 0th)
        instance = bundle.udb.instantiate(valuation, "nation")
        original = set(bundle.certain["nation"].rows)
        assert set(instance.rows) == original

    def test_queries_run_on_uncertain_data(self):
        bundle = generate_uncertain(scale=0.001, x=0.02, seed=5)
        answer = execute_query(q2(), bundle.udb)
        assert len(answer) > 0

    def test_answer_grows_with_uncertainty(self):
        lo = generate_uncertain(scale=0.001, x=0.001, seed=5)
        hi = generate_uncertain(scale=0.001, x=0.1, seed=5)
        lo_ans = len(execute_query(q2(), lo.udb))
        hi_ans = len(execute_query(q2(), hi.udb))
        assert hi_ans > lo_ans
