"""Tests for Algorithm 1 (normalization) — including the paper's Figure 5."""

import pytest

from repro.core import (
    Descriptor,
    UDatabase,
    URelation,
    WorldTable,
    is_normalized,
    normalize_udatabase,
    normalize_urelations,
    variable_components,
)
from repro.core.urelation import tid_column


def figure5_udatabase() -> UDatabase:
    """The U-relational database of Figure 5(a)."""
    w = WorldTable({"c1": [1, 2], "c2": [1, 2], "c3": [1, 2]})
    u = URelation.build(
        [
            (Descriptor(c1=1), "t1", ("a1",)),
            (Descriptor(c1=1, c2=2), "t2", ("a2",)),
            (Descriptor(c1=2), "t2", ("a3",)),
            (Descriptor(c3=1), "t3", ("a4",)),
            (Descriptor(c3=2), "t3", ("a5",)),
        ],
        tid_column("r"),
        ["A"],
    )
    udb = UDatabase(w)
    udb.add_relation("r", ["A"], [u])
    return udb


class TestComponents:
    def test_cooccurring_variables_fused(self):
        udb = figure5_udatabase()
        comps = variable_components(udb.partitions("r"), udb.world_table)
        assert frozenset({"c1", "c2"}) in comps
        assert frozenset({"c3"}) in comps

    def test_all_variables_covered(self):
        udb = figure5_udatabase()
        comps = variable_components(udb.partitions("r"), udb.world_table)
        assert {v for c in comps for v in c} == {"c1", "c2", "c3"}

    def test_chain_transitivity(self):
        """x-y co-occur, y-z co-occur -> one component {x, y, z}."""
        w = WorldTable({"x": [1], "y": [1], "z": [1]})
        u = URelation.build(
            [
                (Descriptor(x=1, y=1), 1, ("a",)),
                (Descriptor(y=1, z=1), 2, ("b",)),
            ],
            tid_column("r"),
            ["A"],
        )
        comps = variable_components([u], w)
        assert frozenset({"x", "y", "z"}) in comps


class TestFigure5:
    def test_normalized_form(self):
        udb = figure5_udatabase()
        normalized = normalize_udatabase(udb)
        (part,) = normalized.partitions("r")
        assert is_normalized([part])
        assert part.d_width == 1

    def test_figure5b_row_count(self):
        """Figure 5(b): normalization yields 7 rows for the fused component."""
        udb = figure5_udatabase()
        normalized = normalize_udatabase(udb)
        (part,) = normalized.partitions("r")
        assert len(part) == 7

    def test_fused_domain_is_product(self):
        udb = figure5_udatabase()
        normalized = normalize_udatabase(udb)
        fused = [v for v in normalized.world_table.variables() if "+" in v]
        assert len(fused) == 1
        assert len(normalized.world_table.domain(fused[0])) == 4  # 2 x 2

    def test_world_set_preserved(self):
        """Theorem 4.2: same world-set before and after."""
        udb = figure5_udatabase()
        normalized = normalize_udatabase(udb)
        before = {frozenset(i["r"].rows) for _, i in udb.worlds()}
        after = {frozenset(i["r"].rows) for _, i in normalized.worlds()}
        assert before == after

    def test_world_count_preserved(self):
        udb = figure5_udatabase()
        normalized = normalize_udatabase(udb)
        assert normalized.world_count() == udb.world_count()


class TestNormalizeGeneral:
    def test_already_normalized_is_stable(self, vehicles_udb):
        normalized = normalize_udatabase(vehicles_udb)
        before = {frozenset(i["r"].rows) for _, i in vehicles_udb.worlds()}
        after = {frozenset(i["r"].rows) for _, i in normalized.worlds()}
        assert before == after
        for part in normalized.partitions("r"):
            assert is_normalized([part])

    def test_empty_descriptors_stay_trivial(self):
        w = WorldTable({"x": [1, 2]})
        u = URelation.build(
            [(Descriptor(), 1, ("a",)), (Descriptor(x=1), 2, ("b",))],
            tid_column("r"),
            ["A"],
        )
        normalized, _world = normalize_urelations([u], w)
        (n,) = normalized
        descriptors = n.descriptors()
        assert Descriptor() in descriptors

    def test_probabilities_multiply(self):
        w = WorldTable(
            {"x": [1, 2], "y": [1, 2]},
            probabilities={"x": [0.9, 0.1], "y": [0.5, 0.5]},
        )
        u = URelation.build(
            [(Descriptor(x=1, y=2), 1, ("a",))], tid_column("r"), ["A"]
        )
        _normalized, new_world = normalize_urelations([u], w)
        (fused,) = [v for v in new_world.variables() if "+" in v]
        assert new_world.probability(fused, (1, 2)) == pytest.approx(0.45)
        total = sum(
            new_world.probability(fused, v) for v in new_world.domain(fused)
        )
        assert total == pytest.approx(1.0)

    def test_is_normalized_detects_wide(self):
        u = URelation.build(
            [(Descriptor(x=1, y=1), 1, ("a",))], tid_column("r"), ["A"]
        )
        assert not is_normalized([u])

    def test_normalization_expands_partial_descriptors(self):
        """A tuple fixing only part of its component expands to all
        completions (Algorithm 1's inner loop over W)."""
        w = WorldTable({"x": [1, 2], "y": [1, 2, 3]})
        u = URelation.build(
            [
                (Descriptor(x=1), 1, ("a",)),      # y free: 3 completions
                (Descriptor(x=1, y=2), 2, ("b",)),  # fully fixed: 1 row
            ],
            tid_column("r"),
            ["A"],
        )
        normalized, _ = normalize_urelations([u], w)
        (n,) = normalized
        assert len(n) == 4
