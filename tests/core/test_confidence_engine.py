"""The memoized confidence engine: exact, approximate, and auto paths.

The oracle throughout is full world enumeration: the probability of a
descriptor union is the total weight of the valuations satisfying at
least one descriptor.  The engine must match it exactly on the exact
path, within (epsilon, delta) on the sampled path, and the memoization
layer must actually share work across groups.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ConfidenceEngine,
    Descriptor,
    WorldTable,
    approx_confidence,
    assignment_space_size,
    confidence_engine,
    exact_confidence,
    monte_carlo_confidence,
)
from repro.core.probability import EXACT_SPACE_LIMIT


def oracle_confidence(descriptors, world):
    """Union probability by full world enumeration."""
    if not descriptors:
        return 0.0
    total = 0.0
    for valuation in world.valuations():
        if any(d.extended_by(valuation) for d in descriptors):
            total += world.valuation_probability(valuation)
    return total


# -- strategies ---------------------------------------------------------
@st.composite
def prob_worlds(draw):
    """2-3 variables, domain sizes 2-3, random (normalized) probabilities."""
    n_vars = draw(st.integers(min_value=2, max_value=3))
    domains = {}
    probabilities = {}
    for i in range(n_vars):
        var = f"v{i}"
        size = draw(st.integers(min_value=2, max_value=3))
        weights = [
            draw(st.integers(min_value=1, max_value=5)) for _ in range(size)
        ]
        total = sum(weights)
        domains[var] = list(range(1, size + 1))
        probabilities[var] = [w / total for w in weights]
    return WorldTable(domains, probabilities=probabilities)


@st.composite
def descriptor_lists(draw, world):
    variables = sorted(world.variables())
    n = draw(st.integers(min_value=0, max_value=5))
    out = []
    for _ in range(n):
        width = draw(st.integers(min_value=0, max_value=2))
        chosen = draw(
            st.lists(
                st.sampled_from(variables),
                min_size=width,
                max_size=width,
                unique=True,
            )
        )
        out.append(
            Descriptor(
                {var: draw(st.sampled_from(world.domain(var))) for var in chosen}
            )
        )
    return out


@st.composite
def worlds_and_descriptors(draw):
    world = draw(prob_worlds())
    return world, draw(descriptor_lists(world))


# -- exact path ---------------------------------------------------------
@given(worlds_and_descriptors())
@settings(max_examples=120, deadline=None)
def test_exact_matches_world_enumeration(case):
    world, descriptors = case
    assert exact_confidence(descriptors, world) == pytest.approx(
        oracle_confidence(descriptors, world)
    )


@given(worlds_and_descriptors())
@settings(max_examples=60, deadline=None)
def test_auto_matches_exact_on_small_spaces(case):
    world, descriptors = case
    engine = confidence_engine(world)
    assert engine.confidence(descriptors, method="auto") == pytest.approx(
        engine.confidence(descriptors, method="exact")
    )


@given(worlds_and_descriptors())
@settings(max_examples=40, deadline=None)
def test_streaming_exact_matches_indexed(case):
    """Forcing the streaming fallback (tiny exact_limit) changes nothing."""
    world, descriptors = case
    tight = ConfidenceEngine(world, exact_limit=1)
    assert tight.confidence(descriptors, method="exact") == pytest.approx(
        oracle_confidence(descriptors, world)
    )


def test_component_factorization_on_disjoint_variables():
    """Descriptors over disjoint variables multiply: 1 - prod(1 - p_i)."""
    world = WorldTable(
        {"a": [1, 2], "b": [1, 2], "c": [1, 2]},
        probabilities={"a": [0.2, 0.8], "b": [0.4, 0.6], "c": [0.5, 0.5]},
    )
    descriptors = [Descriptor(a=1), Descriptor(b=1), Descriptor(c=1)]
    expected = 1.0 - (1 - 0.2) * (1 - 0.4) * (1 - 0.5)
    assert exact_confidence(descriptors, world) == pytest.approx(expected)


def test_engine_is_shared_and_memoizes_across_groups():
    world = WorldTable(
        {"x": [1, 2], "y": [1, 2]}, probabilities={"x": [0.3, 0.7], "y": [0.5, 0.5]}
    )
    engine = confidence_engine(world)
    assert confidence_engine(world) is engine  # one engine per table
    # singleton components go through the descriptor-probability cache
    engine.confidence([Descriptor(x=1), Descriptor(y=1)])
    # a connected component (shared x) exercises the indexed exact path
    descriptors = [Descriptor(x=1), Descriptor(x=2, y=1)]
    first = engine.confidence(descriptors)
    hits_before = engine.stats()["cache_hits"]
    second = engine.confidence(list(reversed(descriptors)))  # same set
    assert second == first
    stats = engine.stats()
    assert stats["cache_hits"] == hits_before + 1
    assert stats["cached_descriptors"] >= 2
    assert stats["cached_variable_sets"] >= 1


def test_memoized_vectors_survive_append_only_growth():
    """add_variable never invalidates cached vectors (append-only table)."""
    world = WorldTable({"x": [1, 2]}, probabilities={"x": [0.25, 0.75]})
    engine = confidence_engine(world)
    assert engine.confidence([Descriptor(x=1)]) == pytest.approx(0.25)
    world.add_variable("y", [1, 2], probabilities=[0.5, 0.5])
    assert engine.confidence([Descriptor(x=1), Descriptor(y=1)]) == pytest.approx(
        1 - 0.75 * 0.5
    )


def test_edge_cases():
    world = WorldTable({"x": [1, 2]}, probabilities={"x": [0.5, 0.5]})
    engine = confidence_engine(world)
    assert engine.confidence([]) == 0.0
    assert engine.confidence([Descriptor()]) == 1.0
    assert engine.confidence([Descriptor(), Descriptor(x=1)]) == 1.0


def test_invalid_inputs_rejected():
    world = WorldTable({"x": [1, 2]}, probabilities={"x": [0.5, 0.5]})
    engine = confidence_engine(world)
    with pytest.raises(ValueError):
        engine.confidence([Descriptor(x=1)], method="magic")
    with pytest.raises(ValueError):
        engine.confidence([Descriptor(x=1)], method="approx", epsilon=0.0)
    with pytest.raises(ValueError):
        engine.confidence([Descriptor(x=1)], method="approx", delta=1.5)


# -- assignment-space helper --------------------------------------------
def test_assignment_space_size():
    world = WorldTable({"x": [1, 2], "y": [1, 2, 3]})
    assert assignment_space_size([], world) == 1
    assert assignment_space_size(["x"], world) == 2
    assert assignment_space_size(["x", "y"], world) == 6
    assert assignment_space_size(["x", "y"], world, limit=5) is None
    assert assignment_space_size(["x", "y"], world, limit=6) == 6
    assert EXACT_SPACE_LIMIT == 1 << 16


# -- approximate path ---------------------------------------------------
@given(worlds_and_descriptors(), st.integers(min_value=0, max_value=5))
@settings(max_examples=30, deadline=None)
def test_approx_within_epsilon_on_small_cases(case, seed):
    world, descriptors = case
    exact = oracle_confidence(descriptors, world)
    estimate = approx_confidence(
        descriptors, world, epsilon=0.05, delta=0.02, seed=seed
    )
    # delta=0.02 over 30 examples x 6 seeds makes a miss vanishingly rare;
    # the small slack absorbs it entirely
    assert abs(estimate - exact) <= 0.05 + 1e-9


def test_approx_epsilon_delta_bound_over_seeds():
    """>= 95% of seeds land within epsilon (the advertised delta=0.05)."""
    world = WorldTable(
        {"x": [1, 2, 3], "y": [1, 2, 3], "z": [1, 2]},
        probabilities={
            "x": [0.2, 0.3, 0.5],
            "y": [0.6, 0.3, 0.1],
            "z": [0.45, 0.55],
        },
    )
    descriptors = [
        Descriptor(x=1, y=1),
        Descriptor(y=1, z=1),
        Descriptor(x=2, z=2),
        Descriptor(x=3, y=2),
    ]
    exact = oracle_confidence(descriptors, world)
    epsilon = 0.05
    within = sum(
        abs(approx_confidence(descriptors, world, epsilon=epsilon, delta=0.05, seed=s) - exact)
        <= epsilon
        for s in range(40)
    )
    assert within >= 38  # 95% of 40


def test_approx_deterministic_given_seed():
    world = WorldTable(
        {"x": [1, 2], "y": [1, 2]}, probabilities={"x": [0.3, 0.7], "y": [0.5, 0.5]}
    )
    a = approx_confidence(
        [Descriptor(x=1), Descriptor(y=1)], world, epsilon=0.05, delta=0.1, seed=11
    )
    b = approx_confidence(
        [Descriptor(x=1), Descriptor(y=1)], world, epsilon=0.05, delta=0.1, seed=11
    )
    assert a == b


def test_approx_estimate_stays_in_feasible_interval():
    """Estimates are clamped to [max p_i, min(1, sum p_i)]."""
    world = WorldTable(
        {"x": [1, 2], "y": [1, 2]}, probabilities={"x": [0.9, 0.1], "y": [0.8, 0.2]}
    )
    descriptors = [Descriptor(x=1), Descriptor(y=1)]
    for seed in range(10):
        estimate = approx_confidence(
            descriptors, world, epsilon=0.01, delta=0.2, seed=seed
        )
        assert 0.9 - 1e-12 <= estimate <= 1.0


def test_auto_switches_to_sampling_beyond_the_space_limit():
    """A connected component too large to enumerate is sampled under auto."""
    world = WorldTable(
        {"x": [1, 2], "y": [1, 2]}, probabilities={"x": [0.3, 0.7], "y": [0.5, 0.5]}
    )
    engine = ConfidenceEngine(world, exact_limit=2)  # 2x2 space > limit
    descriptors = [Descriptor(x=1), Descriptor(x=2, y=1)]
    value, used = engine.confidence_detail(
        descriptors, method="auto", epsilon=0.02, delta=0.05, seed=0
    )
    assert used == "approx"
    exact = oracle_confidence(descriptors, world)
    assert value == pytest.approx(exact, abs=0.02 + 1e-9)
    # singleton components never sample, even under forced approx
    _p, used_single = engine.confidence_detail(
        [Descriptor(x=1)], method="approx", epsilon=0.02, delta=0.05, seed=0
    )
    assert used_single == "exact"


# -- the direct sampler (hoisted-domain rewrite) ------------------------
@given(worlds_and_descriptors())
@settings(max_examples=20, deadline=None)
def test_monte_carlo_still_converges(case):
    world, descriptors = case
    exact = oracle_confidence(descriptors, world)
    estimate = monte_carlo_confidence(descriptors, world, samples=20_000, seed=5)
    assert estimate == pytest.approx(exact, abs=0.03)
