"""Property-based tests for the central theorems.

* Theorem 3.5 / Figure 4: for random U-relational databases and random
  positive queries, ``poss`` via translation == union of per-world answers.
* Lemma 4.3: certain answers == intersection of per-world answers.
* Theorem 4.2: normalization preserves the world-set.
* Prop. 3.3: reduction preserves the world-set.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.core import (
    Certain,
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UJoin,
    UProject,
    UQuery,
    URelation,
    USelect,
    UUnion,
    WorldTable,
    execute_query,
    normalize_udatabase,
    reduce_udatabase,
)
from repro.core.urelation import tid_column
from repro.relational import col, lit
from tests.conftest import brute_force_certain, brute_force_poss

# -- strategies ---------------------------------------------------------
variables = ["x", "y", "z"]
small_values = st.integers(min_value=0, max_value=3)


@st.composite
def field_triples(draw, tid: int):
    """Triples defining ONE tuple field so it has a value in *every* world.

    The paper assumes reduced input databases whose tuples are complete in
    every world their descriptors cover (its generator — and ours in
    :mod:`repro.ugen` — only produces such "total" fields: a field is either
    certain or takes one value per domain value of its variable(s)).  The
    single-partition projection shortcut of Section 3 relies on this.
    """
    kind = draw(st.sampled_from(["certain", "one_var", "two_var"]))
    if kind == "certain":
        return [(Descriptor(), tid, (draw(small_values),))]
    if kind == "one_var":
        var = draw(st.sampled_from(variables))
        return [
            (Descriptor({var: value}), tid, (draw(small_values),))
            for value in (1, 2)
        ]
    v1, v2 = draw(
        st.lists(st.sampled_from(variables), min_size=2, max_size=2, unique=True)
    )
    return [
        (Descriptor({v1: a, v2: b}), tid, (draw(small_values),))
        for a in (1, 2)
        for b in (1, 2)
    ]


@st.composite
def udatabases(draw):
    """A small two-attribute relation over a 3-variable world table."""
    world = WorldTable({v: [1, 2] for v in variables})
    n_tuples = draw(st.integers(min_value=1, max_value=4))
    a_triples, b_triples = [], []
    for tid in range(1, n_tuples + 1):
        a_triples.extend(draw(field_triples(tid)))
        b_triples.extend(draw(field_triples(tid)))
    u_a = URelation.build(a_triples, tid_column("r"), ["a"])
    u_b = URelation.build(b_triples, tid_column("r"), ["b"])
    udb = UDatabase(world)
    udb.add_relation("r", ["a", "b"], [u_a, u_b])
    return udb


@st.composite
def queries(draw):
    shape = draw(
        st.sampled_from(["rel", "select", "project", "select_project", "union", "join"])
    )
    if shape == "rel":
        return Rel("r")
    if shape == "select":
        column = draw(st.sampled_from(["a", "b"]))
        return USelect(Rel("r"), col(column).eq(lit(draw(small_values))))
    if shape == "project":
        column = draw(st.sampled_from(["a", "b"]))
        return UProject(Rel("r"), [column])
    if shape == "select_project":
        column = draw(st.sampled_from(["a", "b"]))
        other = draw(st.sampled_from(["a", "b"]))
        return UProject(
            USelect(Rel("r"), col(column) > lit(draw(small_values))), [other]
        )
    if shape == "union":
        left = UProject(USelect(Rel("r"), col("a").eq(lit(draw(small_values)))), ["a"])
        right = UProject(USelect(Rel("r"), col("b").eq(lit(draw(small_values)))), ["b"])
        return UUnion(left, right)
    # self-join with aliases
    left = UProject(Rel("r", "p"), ["p.a"])
    right = UProject(Rel("r", "q"), ["q.b"])
    return UJoin(left, right, col("p.a").eq(col("q.b")))


# -- properties ---------------------------------------------------------
@given(udatabases(), queries())
@settings(max_examples=80, deadline=None)
def test_poss_matches_brute_force(udb: UDatabase, query: UQuery):
    translated = set(execute_query(Poss(query), udb).rows)
    oracle = brute_force_poss(query, udb)
    assert translated == oracle


@given(udatabases(), queries())
@settings(max_examples=40, deadline=None)
def test_certain_matches_brute_force(udb: UDatabase, query: UQuery):
    translated = set(execute_query(Certain(query), udb).rows)
    oracle = brute_force_certain(query, udb)
    assert translated == oracle


@given(udatabases())
@settings(max_examples=40, deadline=None)
def test_normalization_preserves_world_set(udb: UDatabase):
    normalized = normalize_udatabase(udb)
    before = {frozenset(i["r"].rows) for _, i in udb.worlds()}
    after = {frozenset(i["r"].rows) for _, i in normalized.worlds()}
    assert before == after


@given(udatabases())
@settings(max_examples=40, deadline=None)
def test_reduction_preserves_world_set(udb: UDatabase):
    reduced = reduce_udatabase(udb)
    before = {frozenset(i["r"].rows) for _, i in udb.worlds()}
    after = {frozenset(i["r"].rows) for _, i in reduced.worlds()}
    assert before == after


@given(udatabases(), queries())
@settings(max_examples=30, deadline=None)
def test_optimizer_does_not_change_answers(udb: UDatabase, query: UQuery):
    optimized = set(execute_query(Poss(query), udb, optimize=True).rows)
    raw = set(execute_query(Poss(query), udb, optimize=False).rows)
    assert optimized == raw


@given(udatabases())
@settings(max_examples=30, deadline=None)
def test_generated_databases_are_valid(udb: UDatabase):
    assert udb.is_valid()
