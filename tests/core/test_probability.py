"""Tests for probabilistic U-relations (Section 7): confidence computation."""

import pytest

from repro.core import (
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UProject,
    URelation,
    USelect,
    WorldTable,
    confidence_relation,
    exact_confidence,
    execute_query,
    monte_carlo_confidence,
    tuple_confidences,
)
from repro.core.urelation import tid_column
from repro.relational import col, lit


@pytest.fixture
def prob_world():
    return WorldTable(
        {"x": [1, 2], "y": [1, 2]},
        probabilities={"x": [0.3, 0.7], "y": [0.5, 0.5]},
    )


class TestExactConfidence:
    def test_single_descriptor(self, prob_world):
        assert exact_confidence([Descriptor(x=1)], prob_world) == pytest.approx(0.3)

    def test_conjunction(self, prob_world):
        assert exact_confidence(
            [Descriptor(x=1, y=2)], prob_world
        ) == pytest.approx(0.15)

    def test_union_of_disjoint(self, prob_world):
        p = exact_confidence([Descriptor(x=1), Descriptor(x=2)], prob_world)
        assert p == pytest.approx(1.0)

    def test_union_with_overlap(self, prob_world):
        # P(x=1 or y=1) = 0.3 + 0.5 - 0.15 = 0.65
        p = exact_confidence([Descriptor(x=1), Descriptor(y=1)], prob_world)
        assert p == pytest.approx(0.65)

    def test_empty_descriptor_is_one(self, prob_world):
        assert exact_confidence([Descriptor()], prob_world) == 1.0

    def test_no_descriptors_is_zero(self, prob_world):
        assert exact_confidence([], prob_world) == 0.0

    def test_matches_world_enumeration(self, prob_world):
        """The exact union probability equals summing full world weights."""
        descriptors = [Descriptor(x=1, y=1), Descriptor(y=2)]
        expected = 0.0
        for valuation in prob_world.valuations():
            if any(d.extended_by(valuation) for d in descriptors):
                expected += prob_world.valuation_probability(valuation)
        assert exact_confidence(descriptors, prob_world) == pytest.approx(expected)


class TestMonteCarlo:
    def test_converges_to_exact(self, prob_world):
        descriptors = [Descriptor(x=1), Descriptor(y=1)]
        exact = exact_confidence(descriptors, prob_world)
        estimate = monte_carlo_confidence(
            descriptors, prob_world, samples=20_000, seed=7
        )
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_certain_tuple_estimate_is_one(self, prob_world):
        assert monte_carlo_confidence([Descriptor()], prob_world) == 1.0

    def test_deterministic_given_seed(self, prob_world):
        descriptors = [Descriptor(x=1)]
        a = monte_carlo_confidence(descriptors, prob_world, samples=500, seed=3)
        b = monte_carlo_confidence(descriptors, prob_world, samples=500, seed=3)
        assert a == b


class TestQueryConfidences:
    def make_udb(self, prob_world):
        u = URelation.build(
            [
                (Descriptor(x=1), 1, ("alice",)),
                (Descriptor(x=2), 1, ("bob",)),
                (Descriptor(y=1), 2, ("alice",)),
            ],
            tid_column("people"),
            ["name"],
        )
        udb = UDatabase(prob_world)
        udb.add_relation("people", ["name"], [u])
        return udb

    def test_tuple_confidences(self, prob_world):
        udb = self.make_udb(prob_world)
        result = execute_query(Rel("people"), udb)
        confs = tuple_confidences(result, prob_world)
        # P(alice) = P(x=1 or y=1) = 0.3 + 0.5 - 0.15 = 0.65
        assert confs[("alice",)] == pytest.approx(0.65)
        assert confs[("bob",)] == pytest.approx(0.7)

    def test_monte_carlo_method(self, prob_world):
        udb = self.make_udb(prob_world)
        result = execute_query(Rel("people"), udb)
        confs = tuple_confidences(result, prob_world, method="monte-carlo", samples=20_000)
        assert confs[("bob",)] == pytest.approx(0.7, abs=0.02)

    def test_unknown_method_rejected(self, prob_world):
        udb = self.make_udb(prob_world)
        result = execute_query(Rel("people"), udb)
        with pytest.raises(ValueError):
            tuple_confidences(result, prob_world, method="magic")

    def test_confidence_relation_sorted(self, prob_world):
        udb = self.make_udb(prob_world)
        result = execute_query(Rel("people"), udb)
        rel = confidence_relation(result, prob_world)
        assert rel.schema.names == ["name", "conf"]
        confs = [row[-1] for row in rel.rows]
        assert confs == sorted(confs, reverse=True)

    def test_selection_preserves_probabilities(self, prob_world):
        """Positive RA evaluation is unchanged in the probabilistic case."""
        udb = self.make_udb(prob_world)
        q = USelect(Rel("people"), col("name").eq(lit("alice")))
        result = execute_query(q, udb)
        confs = tuple_confidences(result, prob_world)
        assert confs[("alice",)] == pytest.approx(0.65)

    def test_certain_tuple_has_confidence_one(self):
        w = WorldTable({"x": [1, 2]}, probabilities={"x": [0.5, 0.5]})
        u = URelation.build(
            [(Descriptor(), 1, ("base",)), (Descriptor(x=1), 2, ("maybe",))],
            tid_column("r"),
            ["v"],
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["v"], [u])
        result = execute_query(Rel("r"), udb)
        confs = tuple_confidences(result, w)
        assert confs[("base",)] == 1.0
        assert confs[("maybe",)] == pytest.approx(0.5)
