"""Property: compaction changes the representation, never the answers.

A random sequence of INSERT / UPDATE / DELETE statements leaves the
relation as a stack of immutable segments plus delete vectors; ``VACUUM``
rewrites that stack into one fresh base segment.  The invariant the whole
maintenance path rests on: the compacted database, the uncompacted one,
and a from-scratch rebuild of the surviving logical tuples are
indistinguishable under every execution mode, with and without access
paths — while the *structure* collapses to ``segment_count == 1`` /
``deleted_ratio == 0`` and the world table is untouched (compaction moves
tuples, never uncertainty).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import execute_query
from repro.core.descriptor import Descriptor
from repro.core.query import Poss, Rel, UProject
from repro.core.udatabase import CompactionPolicy, UDatabase
from repro.core.urelation import URelation, tid_column
from repro.sql import execute_sql

MODES = ["rows", "blocks", "columns"]

ids = st.integers(min_value=0, max_value=6)
types = st.sampled_from(["a", "b", "c"])
rows = st.lists(st.tuples(ids, types), min_size=0, max_size=4)

inserts = st.tuples(st.just("insert"), rows.filter(len))
updates = st.tuples(
    st.just("update"), types, st.sampled_from(["=", ">", "<="]), ids
)
deletes = st.tuples(st.just("delete"), st.sampled_from(["=", ">", "<="]), ids)

scripts = st.tuples(
    rows,  # initial contents
    st.lists(st.one_of(inserts, updates, deletes), min_size=1, max_size=6),
)


def _build(initial, auto_index=False):
    udb = UDatabase(auto_index=auto_index)
    tid = tid_column("r")
    p_id = URelation.build(
        [(Descriptor(), i, (r[0],)) for i, r in enumerate(initial)], tid, ["id"]
    )
    p_type = URelation.build(
        [(Descriptor(), i, (r[1],)) for i, r in enumerate(initial)], tid, ["type"]
    )
    udb.add_relation("r", ["id", "type"], [p_id, p_type])
    return udb


def _matches(row, op, k):
    return {"=": row[0] == k, ">": row[0] > k, "<=": row[0] <= k}[op]


def _apply(udb, model, op):
    if op[0] == "insert":
        values = ", ".join(f"({i}, '{t}')" for i, t in op[1])
        execute_sql(f"insert into r values {values}", udb)
        model.extend(op[1])
    elif op[0] == "update":
        _, value, cmp, k = op
        execute_sql(f"update r set type = '{value}' where id {cmp} {k}", udb)
        for i, row in enumerate(model):
            if _matches(row, cmp, k):
                model[i] = (row[0], value)
    else:
        _, cmp, k = op
        execute_sql(f"delete from r where id {cmp} {k}", udb)
        model[:] = [row for row in model if not _matches(row, cmp, k)]


def _replay(script, auto_index=False):
    initial, ops = script
    udb = _build(initial, auto_index=auto_index)
    model = list(initial)
    for op in ops:
        _apply(udb, model, op)
    return udb, model


def _answers(db, query, mode, use_indexes):
    return set(
        map(tuple, execute_query(query, db, mode=mode, use_indexes=use_indexes).rows)
    )


@settings(max_examples=40, deadline=None)
@given(scripts)
def test_compacted_equals_uncompacted_equals_rebuilt(script):
    """The three-way equivalence across every mode × access-path choice."""
    churned, model = _replay(script)
    compacted, _ = _replay(script)
    compacted.compact()
    rebuilt = _build(model)
    expected = set(model)
    query = Poss(UProject(Rel("r"), ["id", "type"]))
    for mode in MODES:
        for use_indexes in (True, False):
            for label, db in (
                ("churned", churned),
                ("compacted", compacted),
                ("rebuilt", rebuilt),
            ):
                assert _answers(db, query, mode, use_indexes) == expected, (
                    mode,
                    use_indexes,
                    label,
                )


@settings(max_examples=40, deadline=None)
@given(scripts)
def test_compaction_structural_invariants(script):
    """Post-VACUUM: one segment, empty delete vector, untouched world."""
    udb, model = _replay(script)
    world_version = udb.world_table.version
    world_count = udb.world_count()
    result = udb.compact()
    for part in udb.partitions("r"):
        assert len(part.relation.segments()) == 1
        assert part.relation.deleted_ordinals() == frozenset()
        # the fresh base holds exactly the surviving tuples, in order
        assert len(part.relation.rows) == len(model)
    health = udb.segment_health(publish=False)
    for stats in health.values():
        assert stats["segment_count"] == 1
        assert stats["deleted_rows"] == 0
        assert stats["deleted_ratio"] == 0
    assert udb.world_table.version == world_version
    assert udb.world_count() == world_count
    assert result.rows_dropped >= 0
    # compacting an already-compacted database is the identity
    again = udb.compact()
    assert not again.changed


@settings(max_examples=25, deadline=None)
@given(scripts)
def test_compaction_rebuilds_access_paths_and_statistics(script):
    """Auto-indexed databases answer identically through the new base.

    Compaction replaces the partition relation objects, so carried index
    *definitions* must rebuild against the new ordinals and the
    optimizer's per-relation statistics must recompute — both verified
    behaviourally: an indexed execution over the compacted database
    matches the model exactly.
    """
    initial, ops = script
    udb = _build(initial, auto_index=True)
    model = list(initial)
    for op in ops:
        _apply(udb, model, op)
    udb.compact()
    query = Poss(UProject(Rel("r"), ["id", "type"]))
    assert _answers(udb, query, "columns", True) == set(model)
    from repro.relational.index import attached_index_defs

    for part in udb.partitions("r"):
        # the auto-index definitions followed the rewrite
        assert attached_index_defs(part.relation)


@settings(max_examples=25, deadline=None)
@given(scripts)
def test_threshold_compaction_matches_on_demand(script):
    """``maybe_compact`` under an always-due policy == ``compact``."""
    eager, model = _replay(script)
    eager.maybe_compact(CompactionPolicy(segment_limit=1, deleted_ratio=0.0))
    for part in eager.partitions("r"):
        assert len(part.relation.segments()) == 1
    query = Poss(UProject(Rel("r"), ["id", "type"]))
    assert _answers(eager, query, "columns", False) == set(model)
    # and a policy nothing crosses leaves the stack alone
    lazy, _ = _replay(script)
    stacks = [len(p.relation.segments()) for p in lazy.partitions("r")]
    result = lazy.maybe_compact(
        CompactionPolicy(segment_limit=10_000, deleted_ratio=1.1, min_deleted=10_000)
    )
    assert not result.changed
    assert [len(p.relation.segments()) for p in lazy.partitions("r")] == stacks
