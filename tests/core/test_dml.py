"""End-to-end DML: INSERT / UPDATE / DELETE through every entry point.

Covers the SQL surface (``execute_sql``), prepared ``$n`` statements,
sessions (including the snapshot interaction), and the exact
catalog-version accounting DML promises: one bump per replaced relation
plus one world-table bump per minted variable — nothing else.
"""

from __future__ import annotations

import pytest

from repro.core import execute_query
from repro.core.descriptor import Descriptor
from repro.core.query import Certain, Poss, Rel, USelect
from repro.core.udatabase import UDatabase
from repro.core.urelation import URelation, tid_column
from repro.relational.expressions import col, lit
from repro.server.session import SnapshotChanged
from repro.sql import DMLResult, execute_sql, prepare

from tests.conftest import build_vehicles_udb


def _single_partition_udb(auto_index=False) -> UDatabase:
    """One relation, one partition covering both columns — the layout
    under which catalog-version deltas are exact."""
    udb = UDatabase(auto_index=auto_index)
    part = URelation.build(
        [(Descriptor(), i, (i, f"t{i}")) for i in range(3)],
        tid_column("r"),
        ["id", "type"],
    )
    udb.add_relation("r", ["id", "type"], [part])
    return udb


def _possible_rows(udb, sql="possible (select id, type from r)"):
    return set(map(tuple, execute_sql(sql, udb).rows))


# ----------------------------------------------------------------------
# INSERT
# ----------------------------------------------------------------------


def test_insert_certain_rows_visible():
    udb = _single_partition_udb()
    result = execute_sql("insert into r values (10, 'a'), (11, 'b')", udb)
    assert result == DMLResult("insert", 2, ())
    rows = _possible_rows(udb)
    assert {(10, "a"), (11, "b")} <= rows
    assert len(rows) == 5


def test_insert_uncertain_mints_fresh_variable():
    udb = _single_partition_udb()
    result = execute_sql("insert into r values (10, {'a', 'b', 'c'})", udb)
    assert result.count == 1
    assert len(result.variables) == 1
    var = result.variables[0]
    # fresh variable with domain 0..k-1 (Section 2's construction)
    assert udb.world_table.domain(var) == (0, 1, 2)
    # all alternatives are possible, none is certain
    possible = _possible_rows(udb)
    assert {(10, "a"), (10, "b"), (10, "c")} <= possible
    certain = set(
        map(
            tuple,
            execute_query(
                Certain(USelect(Rel("r"), col("id").eq(lit(10)))), udb
            ).rows,
        )
    )
    assert certain == set()


def test_insert_arity_mismatch_rejected():
    udb = _single_partition_udb()
    with pytest.raises(ValueError, match="expects 2 values"):
        execute_sql("insert into r values (1)", udb)


def test_catalog_version_deltas_are_exact():
    udb = _single_partition_udb()
    v = udb.catalog_version
    execute_sql("insert into r values (10, 'a')", udb)
    assert udb.catalog_version - v == 1  # one replaced relation
    v = udb.catalog_version
    result = execute_sql("insert into r values (11, {'a', 'b'})", udb)
    assert len(result.variables) == 1
    assert udb.catalog_version - v == 2  # one relation + one minted variable
    v = udb.catalog_version
    execute_sql("update r set type = 'z' where id = 11", udb)
    assert udb.catalog_version - v == 1
    v = udb.catalog_version
    execute_sql("delete from r where id = 10", udb)
    assert udb.catalog_version - v == 1


# ----------------------------------------------------------------------
# UPDATE / DELETE semantics over vertical partitions
# ----------------------------------------------------------------------


def test_update_possible_worlds_match_rewrites_all_alternatives():
    """A tuple matching its WHERE in *one* world is rewritten in all."""
    udb = build_vehicles_udb()
    # vehicle d is a Tank only when y=1; the update must still rewrite
    # both of d's faction alternatives
    result = execute_sql("update r set faction = 'Neutral' where type = 'Tank'", udb)
    assert result.statement == "update"
    rows = set(
        map(tuple, execute_sql("possible (select id, faction from r)", udb).rows)
    )
    # vehicles a (id 1), c (id 2 or 3), d (id 4) are possibly Tanks: every
    # alternative of theirs is Neutral now; b (id 2 or 3) never is a Tank
    # and keeps Friend
    assert rows == {
        (1, "Neutral"),
        (2, "Neutral"),
        (3, "Neutral"),
        (4, "Neutral"),
        (2, "Friend"),
        (3, "Friend"),
    }


def test_update_untouched_partitions_keep_their_relation_objects():
    udb = build_vehicles_udb()
    before = {tuple(p.value_names): p.relation for p in udb.partitions("r")}
    execute_sql("update r set faction = 'Neutral' where id = 2", udb)
    after = {tuple(p.value_names): p.relation for p in udb.partitions("r")}
    assert after[("id",)] is before[("id",)]
    assert after[("type",)] is before[("type",)]
    assert after[("faction",)] is not before[("faction",)]


def test_delete_removes_every_alternative_and_shares_segments():
    udb = build_vehicles_udb()
    before = {tuple(p.value_names): p.relation for p in udb.partitions("r")}
    result = execute_sql("delete from r where type = 'Tank'", udb)
    assert result.statement == "delete"
    rows = _possible_rows(udb, "possible (select id from r)")
    # a, c, d are possibly Tanks and vanish entirely; only b (id 2 or 3) stays
    assert rows == {(2,), (3,)}
    # delete only widens delete vectors: the immutable segments are shared
    for key, old in before.items():
        new = {tuple(p.value_names): p.relation for p in udb.partitions("r")}[key]
        if new is not old:
            assert new.segments() == old.segments()


def test_update_unknown_column_and_uncertain_set_rejected():
    from repro.core.dml import UncertainValue, update_where
    from repro.sql import SqlSyntaxError

    udb = _single_partition_udb()
    with pytest.raises(ValueError, match="unknown column"):
        execute_sql("update r set nope = 1", udb)
    # the grammar keeps alternative lists out of SET ...
    with pytest.raises(SqlSyntaxError):
        execute_sql("update r set type = {'a', 'b'}", udb)
    # ... and the executor refuses them defensively too
    with pytest.raises(ValueError, match="only supported in INSERT"):
        update_where(udb, "r", [("type", UncertainValue(["a", "b"]))])


# ----------------------------------------------------------------------
# Prepared statements and plan-cache interaction
# ----------------------------------------------------------------------


def test_prepared_insert_runs_per_binding():
    udb = _single_partition_udb()
    statement = prepare("insert into r values ($1, $2)", udb)
    assert prepare("insert into r values ($1, $2)", udb) is statement
    assert statement.run(10, "a").count == 1
    assert statement.run(11, "b").count == 1
    assert {(10, "a"), (11, "b")} <= _possible_rows(udb)


def test_prepared_delete_with_param_condition():
    udb = _single_partition_udb()
    statement = prepare("delete from r where id = $1", udb)
    assert statement.run(0).count == 1
    assert statement.run(1).count == 1
    assert statement.run(99).count == 0
    assert _possible_rows(udb) == {(2, "t2")}


def test_cached_select_sees_rows_after_dml():
    """DML invalidates exactly the cached plans that scanned the table."""
    udb = _single_partition_udb()
    query = prepare("possible (select id from r where id >= $1)", udb)
    assert set(map(tuple, query.run(0).rows)) == {(0,), (1,), (2,)}
    execute_sql("insert into r values (7, 'x')", udb)
    assert set(map(tuple, query.run(0).rows)) == {(0,), (1,), (2,), (7,)}
    execute_sql("delete from r where id = 0", udb)
    assert set(map(tuple, query.run(0).rows)) == {(1,), (2,), (7,)}


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------


def test_session_routes_dml_and_snapshot_rejects_it():
    udb = _single_partition_udb()
    session = udb.session()
    result = session.execute("insert into r values (10, 'a')", ())
    assert isinstance(result, DMLResult) and result.count == 1
    with session.snapshot():
        first = set(map(tuple, session.execute("possible (select id from r)", ()).rows))
        with pytest.raises(SnapshotChanged):
            session.execute("delete from r where id = 10", ())
        # the read-only snapshot is still intact after the refused write
        again = set(map(tuple, session.execute("possible (select id from r)", ()).rows))
        assert again == first
    assert session.execute("delete from r where id = 10", ()).count == 1


def test_snapshot_read_raises_after_foreign_dml():
    udb = _single_partition_udb()
    reader = udb.session()
    writer = udb.session()
    with reader.snapshot():
        reader.execute("possible (select id from r)", ())
        writer.execute("insert into r values (10, 'a')", ())
        with pytest.raises(SnapshotChanged):
            reader.execute("possible (select id from r)", ())
    # outside the snapshot the new row is visible
    assert (10, "a") in _possible_rows(udb)
