"""Tests for the world table: domains, counting, valuations, probability."""

import math
import random

import pytest

from repro.core.descriptor import TOP_VARIABLE, Descriptor
from repro.core.worldtable import WorldTable


class TestConstruction:
    def test_domains(self):
        w = WorldTable({"x": [1, 2], "y": ["a", "b", "c"]})
        assert w.domain("x") == (1, 2)
        assert w.domain("y") == ("a", "b", "c")

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            WorldTable({"x": []})

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            WorldTable({"x": [1, 1]})

    def test_redefinition_rejected(self):
        w = WorldTable({"x": [1]})
        with pytest.raises(ValueError):
            w.add_variable("x", [2])

    def test_unknown_variable_raises(self):
        with pytest.raises(KeyError):
            WorldTable().domain("x")

    def test_trivial_variable_always_present(self):
        w = WorldTable()
        assert TOP_VARIABLE in w
        assert w.domain(TOP_VARIABLE) == (0,)

    def test_variables_excludes_trivial_by_default(self):
        w = WorldTable({"x": [1]})
        assert w.variables() == ["x"]
        assert TOP_VARIABLE in w.variables(include_trivial=True)


class TestCounting:
    def test_world_count(self):
        w = WorldTable({"x": [1, 2], "y": [1, 2, 3]})
        assert w.world_count() == 6

    def test_empty_world_table_one_world(self):
        assert WorldTable().world_count() == 1

    def test_log10(self):
        w = WorldTable({f"v{i}": [1, 2] for i in range(100)})
        assert w.log10_world_count() == pytest.approx(100 * math.log10(2))

    def test_max_domain_size(self):
        w = WorldTable({"x": [1, 2], "y": [1, 2, 3]})
        assert w.max_domain_size() == 3

    def test_len_is_variable_count(self):
        assert len(WorldTable({"x": [1], "y": [1]})) == 2


class TestValuations:
    def test_enumeration_complete(self):
        w = WorldTable({"x": [1, 2], "y": [1, 2]})
        vals = list(w.valuations())
        assert len(vals) == 4
        assert all(TOP_VARIABLE in v for v in vals)
        assert {(v["x"], v["y"]) for v in vals} == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_partial_enumeration(self):
        w = WorldTable({"x": [1, 2], "y": [1, 2]})
        vals = list(w.valuations(["x"]))
        assert len(vals) == 2

    def test_sample_valuation(self):
        w = WorldTable({"x": [1, 2]})
        v = w.sample_valuation(random.Random(0))
        assert v["x"] in (1, 2)


class TestProbability:
    def test_uniform_by_default(self):
        w = WorldTable({"x": [1, 2, 3, 4]})
        assert w.probability("x", 1) == pytest.approx(0.25)

    def test_explicit_probabilities(self):
        w = WorldTable({"x": [1, 2]}, probabilities={"x": [0.7, 0.3]})
        assert w.probability("x", 2) == pytest.approx(0.3)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorldTable({"x": [1, 2]}, probabilities={"x": [0.7, 0.7]})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WorldTable({"x": [1, 2]}, probabilities={"x": [1.0]})

    def test_descriptor_probability_product(self):
        w = WorldTable(
            {"x": [1, 2], "y": [1, 2]},
            probabilities={"x": [0.5, 0.5], "y": [0.25, 0.75]},
        )
        assert w.descriptor_probability(Descriptor(x=1, y=2)) == pytest.approx(0.375)

    def test_unknown_value_rejected(self):
        w = WorldTable({"x": [1, 2]})
        with pytest.raises(KeyError):
            w.probability("x", 99)

    def test_valuation_probability(self):
        w = WorldTable({"x": [1, 2]}, probabilities={"x": [0.9, 0.1]})
        assert w.valuation_probability({"x": 2}) == pytest.approx(0.1)


class TestRelationViews:
    def test_relation_shape(self):
        w = WorldTable({"x": [1, 2]})
        rel = w.relation()
        assert rel.schema.names == ["var", "rng"]
        assert ("x", 1) in rel.rows and ("x", 2) in rel.rows
        assert (TOP_VARIABLE, 0) in rel.rows

    def test_relation_with_probabilities(self):
        w = WorldTable({"x": [1, 2]}, probabilities={"x": [0.6, 0.4]})
        rel = w.relation(with_probabilities=True)
        assert rel.schema.names == ["var", "rng", "p"]
        assert ("x", 1, 0.6) in rel.rows

    def test_from_relation_roundtrip(self):
        w = WorldTable({"x": [1, 2], "y": ["a"]})
        back = WorldTable.from_relation(w.relation())
        assert back.domain("x") == (1, 2)
        assert back.world_count() == w.world_count()

    def test_copy_independent(self):
        w = WorldTable({"x": [1]})
        c = w.copy()
        c.add_variable("y", [1, 2])
        assert "y" not in w
