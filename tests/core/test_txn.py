"""The multi-statement transaction and VACUUM SQL surface.

Lifecycle and refusal semantics for ``BEGIN``/``COMMIT``/``ROLLBACK`` and
``VACUUM [table]`` through both entry points — direct ``execute_sql``
(the database-level transaction) and :class:`Session` (per-connection) —
plus the staging guarantees: nothing visible before COMMIT, world
variables buffered, first-updater-wins conflicts with nothing published.
"""

from __future__ import annotations

import pytest

from repro.core.descriptor import Descriptor
from repro.core.txn import TransactionConflict, TxnResult
from repro.core.udatabase import CompactionResult, UDatabase
from repro.core.urelation import URelation, tid_column
from repro.server.session import Session, SnapshotChanged
from repro.sql import execute_sql, prepare


def _udb() -> UDatabase:
    udb = UDatabase(auto_index=False)
    part = URelation.build(
        [(Descriptor(), i, (i, f"t{i}")) for i in range(3)],
        tid_column("r"),
        ["id", "type"],
    )
    udb.add_relation("r", ["id", "type"], [part])
    return udb


def _rows(udb):
    return set(map(tuple, execute_sql("possible (select id, type from r)", udb).rows))


# ----------------------------------------------------------------------
# lifecycle through execute_sql (the database-level transaction)
# ----------------------------------------------------------------------


def test_begin_stage_commit_lifecycle():
    udb = _udb()
    opened = execute_sql("begin", udb)
    assert isinstance(opened, TxnResult) and opened.status == "open"

    execute_sql("insert into r values (10, 'staged')", udb)
    execute_sql("update r set type = 'moved' where id = 0", udb)
    # nothing published yet: reads answer from the base catalog
    assert (10, "staged") not in _rows(udb)
    assert (0, "t0") in _rows(udb)

    done = execute_sql("commit", udb)
    assert done.status == "committed"
    assert done.statements == 2
    assert done.relations == ("r",)
    rows = _rows(udb)
    assert (10, "staged") in rows and (0, "moved") in rows


def test_rollback_discards_everything():
    udb = _udb()
    before = _rows(udb)
    version = udb.catalog_version
    execute_sql("begin", udb)
    execute_sql("insert into r values (10, 'doomed')", udb)
    execute_sql("delete from r where id = 0", udb)
    done = execute_sql("rollback", udb)
    assert done.status == "rolled_back" and done.statements == 2
    assert _rows(udb) == before
    assert udb.catalog_version == version


def test_noise_words_and_control_errors():
    udb = _udb()
    assert execute_sql("begin transaction", udb).status == "open"
    with pytest.raises(ValueError, match="already open"):
        execute_sql("begin work", udb)
    assert execute_sql("commit work", udb).status == "committed"
    with pytest.raises(ValueError, match="COMMIT without"):
        execute_sql("commit", udb)
    with pytest.raises(ValueError, match="ROLLBACK without"):
        execute_sql("rollback transaction", udb)


def test_immediates_cannot_be_prepared():
    udb = _udb()
    for sql in ("begin", "commit", "rollback", "vacuum", "vacuum r"):
        with pytest.raises(ValueError, match="cannot prepare"):
            prepare(sql, udb)


def test_uncertain_insert_buffers_world_variables_until_commit():
    udb = _udb()
    execute_sql("begin", udb)
    staged = execute_sql("insert into r values (11, {'a', 'b'})", udb)
    assert len(staged.variables) == 1
    variable = staged.variables[0]
    assert variable not in udb.world_table
    world_version = udb.world_table.version

    done = execute_sql("commit", udb)
    assert done.variables == (variable,)
    assert variable in udb.world_table
    assert udb.world_table.version > world_version
    assert {(11, "a"), (11, "b")} <= _rows(udb)


def test_conflicting_commit_publishes_nothing_and_retry_wins():
    udb = _udb()
    execute_sql("begin", udb)
    execute_sql("insert into r values (20, 'loser')", udb)
    # a direct write publishes under the transaction: first updater wins
    udb.insert("r", (21, "winner"))
    with pytest.raises(TransactionConflict, match="'r'"):
        execute_sql("commit", udb)
    rows = _rows(udb)
    assert (21, "winner") in rows and (20, "loser") not in rows
    # the failed transaction is gone: a fresh one can run and commit
    execute_sql("begin", udb)
    execute_sql("insert into r values (20, 'retry')", udb)
    assert execute_sql("commit", udb).status == "committed"
    assert (20, "retry") in _rows(udb)


# ----------------------------------------------------------------------
# VACUUM
# ----------------------------------------------------------------------


def test_vacuum_collapses_segment_stacks():
    udb = _udb()
    for i in range(5):
        execute_sql(f"insert into r values ({30 + i}, 'churn')", udb)
    execute_sql("delete from r where id = 31", udb)
    assert any(h["segment_count"] > 1 for h in udb.segment_health().values())
    before = _rows(udb)

    result = execute_sql("vacuum r", udb)
    assert isinstance(result, CompactionResult)
    assert result.relations == ("r",)
    assert result.rows_dropped >= 1
    for health in udb.segment_health().values():
        assert health["segment_count"] == 1
        assert health["deleted_rows"] == 0
    assert _rows(udb) == before


def test_vacuum_refused_inside_transaction():
    udb = _udb()
    execute_sql("begin", udb)
    with pytest.raises(ValueError, match="inside a transaction"):
        execute_sql("vacuum", udb)
    execute_sql("rollback", udb)


def test_vacuum_unknown_table_errors():
    udb = _udb()
    with pytest.raises(KeyError):
        execute_sql("vacuum nope", udb)


# ----------------------------------------------------------------------
# the session surface (per-connection transactions)
# ----------------------------------------------------------------------


def test_session_transactions_are_per_connection():
    udb = _udb()
    alice, bob = Session(udb), Session(udb)
    alice.execute("begin")
    alice.execute("insert into r values (40, 'alice')")
    # bob has no open transaction: his write publishes immediately
    bob.execute("insert into r values (41, 'bob')")
    assert (41, "bob") in _rows(udb)
    assert (40, "alice") not in _rows(udb)
    with pytest.raises(TransactionConflict):
        alice.execute("commit")
    # and bob's COMMIT has nothing to commit
    with pytest.raises(ValueError, match="COMMIT without"):
        bob.execute("commit")


def test_session_refuses_ddl_and_vacuum_inside_transaction():
    udb = _udb()
    session = Session(udb)
    session.execute("begin")
    with pytest.raises(ValueError, match="DDL cannot run inside a transaction"):
        session.execute("create index idx_t on u_r (type) using hash")
    with pytest.raises(ValueError, match="inside a transaction"):
        session.execute("vacuum")
    session.execute("rollback")


def test_session_snapshot_refuses_transaction_control():
    udb = _udb()
    session = Session(udb)
    with session.snapshot() as snap:
        with pytest.raises(SnapshotChanged):
            snap.execute("begin")
    # outside the block the session works again
    assert session.execute("begin").status == "open"
    assert session.execute("rollback").status == "rolled_back"
