"""Tests for Prop. 3.3 semijoin reduction — including the paper's Example 3.2."""

import pytest

from repro.core import (
    Descriptor,
    UDatabase,
    URelation,
    WorldTable,
    is_reduced,
    reduce_partitions,
    reduce_udatabase,
)
from repro.core.urelation import tid_column


def example32_udatabase() -> UDatabase:
    """The non-reduced database of Example 3.2."""
    w = WorldTable({"c1": [1, 2], "c2": [1, 2]})
    u1 = URelation.build(
        [
            (Descriptor(c1=1), "t1", ("a1",)),
            (Descriptor(c2=1), "t2", ("a2",)),
        ],
        tid_column("r"),
        ["A"],
    )
    u2 = URelation.build(
        [
            (Descriptor(c1=1), "t1", ("b1",)),
            (Descriptor(c1=2), "t1", ("b2",)),
        ],
        tid_column("r"),
        ["B"],
    )
    udb = UDatabase(w)
    udb.add_relation("r", ["A", "B"], [u1, u2])
    return udb


class TestExample32:
    def test_detects_non_reduced(self):
        assert not is_reduced(example32_udatabase())

    def test_second_tuples_removed(self):
        udb = example32_udatabase()
        reduced = reduce_udatabase(udb)
        u1, u2 = reduced.partitions("r")
        # t2's A and t1's c1=2 B tuple cannot be completed
        assert len(u1) == 1 and len(u2) == 1
        assert u1.tuples()[0][2] == ("a1",)
        assert u2.tuples()[0][2] == ("b1",)

    def test_world_set_preserved(self):
        udb = example32_udatabase()
        reduced = reduce_udatabase(udb)
        before = {frozenset(i["r"].rows) for _, i in udb.worlds()}
        after = {frozenset(i["r"].rows) for _, i in reduced.worlds()}
        assert before == after

    def test_reduced_is_fixpoint(self):
        reduced = reduce_udatabase(example32_udatabase())
        assert is_reduced(reduced)


class TestGeneral:
    def test_vehicles_already_reduced(self, vehicles_udb):
        assert is_reduced(vehicles_udb)
        reduced = reduce_udatabase(vehicles_udb)
        for before, after in zip(
            vehicles_udb.partitions("r"), reduced.partitions("r")
        ):
            assert len(before) == len(after)

    def test_single_partition_trivially_reduced(self):
        w = WorldTable({"x": [1, 2]})
        u = URelation.build(
            [(Descriptor(x=1), 1, ("a",))], tid_column("r"), ["A"]
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["A"], [u])
        assert is_reduced(udb)

    def test_missing_tid_partner_removed(self):
        """A tuple whose tid never appears in the other partition dies."""
        w = WorldTable({"x": [1, 2]})
        u_a = URelation.build(
            [(Descriptor(), 1, ("a1",)), (Descriptor(), 2, ("a2",))],
            tid_column("r"),
            ["A"],
        )
        u_b = URelation.build([(Descriptor(), 1, ("b1",))], tid_column("r"), ["B"])
        udb = UDatabase(w)
        udb.add_relation("r", ["A", "B"], [u_a, u_b])
        reduced = reduce_udatabase(udb)
        assert len(reduced.partitions("r")[0]) == 1

    def test_iteration_reaches_fixpoint(self):
        """Removal can cascade: reducing must iterate to a fixpoint."""
        w = WorldTable({"c": [1, 2], "d": [1, 2]})
        # chain: A(t1) needs B(t1); B(t1,c=2) has no C partner, so after one
        # pass B shrinks, after which A's c=2 tuple dies too
        u_a = URelation.build(
            [(Descriptor(c=1), "t1", ("a1",)), (Descriptor(c=2), "t1", ("a2",))],
            tid_column("r"),
            ["A"],
        )
        u_b = URelation.build(
            [(Descriptor(c=1), "t1", ("b1",)), (Descriptor(c=2, d=1), "t1", ("b2",))],
            tid_column("r"),
            ["B"],
        )
        u_c = URelation.build(
            [(Descriptor(c=1), "t1", ("x1",)), (Descriptor(d=2), "t1", ("x2",))],
            tid_column("r"),
            ["C"],
        )
        parts = [u_a, u_b, u_c]
        once = reduce_partitions(parts, iterate=False)
        fixed = reduce_partitions(parts, iterate=True)
        assert sum(len(p) for p in fixed) <= sum(len(p) for p in once)
        assert is_reduced_parts(fixed)


def is_reduced_parts(parts):
    again = reduce_partitions(parts, iterate=True)
    return all(len(a) == len(b) for a, b in zip(parts, again))
