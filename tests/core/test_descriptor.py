"""Tests for ws-descriptors and their relational encoding."""

import pytest

from repro.core.descriptor import (
    TOP_VARIABLE,
    Descriptor,
    decode_descriptor,
    descriptor_columns,
    encode_descriptor,
)


class TestDescriptor:
    def test_empty(self):
        d = Descriptor()
        assert d.empty and len(d) == 0

    def test_kwargs_construction(self):
        d = Descriptor(x=1, y=2)
        assert d["x"] == 1 and d["y"] == 2

    def test_mapping_construction(self):
        d = Descriptor({"x": 1})
        assert d["x"] == 1

    def test_items_sorted(self):
        d = Descriptor(z=1, a=2)
        assert d.items() == (("a", 2), ("z", 1))

    def test_trivial_variable_dropped(self):
        d = Descriptor({TOP_VARIABLE: 0, "x": 1})
        assert d.variables() == ("x",)

    def test_get_and_contains(self):
        d = Descriptor(x=1)
        assert "x" in d and "y" not in d
        assert d.get("y", 9) == 9

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            Descriptor()["x"]

    def test_equality_and_hash(self):
        assert Descriptor(x=1, y=2) == Descriptor(y=2, x=1)
        assert hash(Descriptor(x=1)) == hash(Descriptor(x=1))
        assert Descriptor(x=1) != Descriptor(x=2)

    def test_from_pairs_rejects_contradiction(self):
        with pytest.raises(ValueError):
            Descriptor.from_pairs([("x", 1), ("x", 2)])

    def test_from_pairs_accepts_repeats(self):
        d = Descriptor.from_pairs([("x", 1), ("x", 1)])
        assert len(d) == 1

    def test_repr(self):
        assert repr(Descriptor()) == "{}"
        assert "x->1" in repr(Descriptor(x=1))


class TestConsistency:
    def test_disjoint_consistent(self):
        assert Descriptor(x=1).consistent_with(Descriptor(y=2))

    def test_agreeing_consistent(self):
        assert Descriptor(x=1).consistent_with(Descriptor(x=1, y=2))

    def test_conflicting_inconsistent(self):
        assert not Descriptor(x=1).consistent_with(Descriptor(x=2))

    def test_empty_consistent_with_all(self):
        assert Descriptor().consistent_with(Descriptor(x=1))

    def test_union(self):
        u = Descriptor(x=1).union(Descriptor(y=2))
        assert u == Descriptor(x=1, y=2)

    def test_union_inconsistent_raises(self):
        with pytest.raises(ValueError):
            Descriptor(x=1).union(Descriptor(x=2))

    def test_extended_by(self):
        d = Descriptor(x=1)
        assert d.extended_by({"x": 1, "y": 2})
        assert not d.extended_by({"x": 2, "y": 2})
        assert not d.extended_by({"y": 2})

    def test_empty_extended_by_all(self):
        assert Descriptor().extended_by({})


class TestRelationalEncoding:
    def test_columns(self):
        assert descriptor_columns(2) == ["c1", "w1", "c2", "w2"]

    def test_columns_with_start(self):
        assert descriptor_columns(2, start=3) == ["c3", "w3", "c4", "w4"]

    def test_roundtrip(self):
        d = Descriptor(x=1, y=2)
        assert decode_descriptor(encode_descriptor(d, 3)) == d

    def test_empty_padded_with_top(self):
        encoded = encode_descriptor(Descriptor(), 2)
        assert encoded == (TOP_VARIABLE, 0, TOP_VARIABLE, 0)
        assert decode_descriptor(encoded).empty

    def test_padding_repeats_first_pair(self):
        encoded = encode_descriptor(Descriptor(x=1), 3)
        assert encoded == ("x", 1, "x", 1, "x", 1)

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            encode_descriptor(Descriptor(x=1, y=2), 1)

    def test_decode_rejects_contradiction(self):
        with pytest.raises(ValueError):
            decode_descriptor(("x", 1, "x", 2))
