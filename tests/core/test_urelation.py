"""Tests for the URelation wrapper: structure, iteration, transformations."""

import pytest

from repro.core.descriptor import Descriptor
from repro.core.urelation import URelation, tid_column
from repro.relational.relation import Relation


@pytest.fixture
def u():
    return URelation.build(
        [
            (Descriptor(), "t1", ("a",)),
            (Descriptor(x=1), "t2", ("b",)),
            (Descriptor(x=2, y=1), "t2", ("c",)),
        ],
        tid_name="tid_r",
        value_names=["v"],
    )


class TestTidColumn:
    def test_base(self):
        assert tid_column("orders") == "tid_orders"

    def test_alias(self):
        assert tid_column("orders", "o2") == "tid_o2"


class TestBuild:
    def test_width_inferred(self, u):
        assert u.d_width == 2  # largest descriptor has two pairs

    def test_schema_layout(self, u):
        assert u.schema.names == ["c1", "w1", "c2", "w2", "tid_r", "v"]

    def test_explicit_width(self):
        u = URelation.build(
            [(Descriptor(x=1), 1, ("a",))], "tid_r", ["v"], d_width=3
        )
        assert u.d_width == 3

    def test_value_arity_checked(self):
        with pytest.raises(ValueError):
            URelation.build([(Descriptor(), 1, ("a", "b"))], "tid_r", ["v"])

    def test_schema_mismatch_rejected(self):
        rel = Relation(["bogus"], [])
        with pytest.raises(ValueError):
            URelation(rel, 1, ["tid_r"], ["v"])

    def test_from_certain_rows(self):
        u = URelation.from_certain_rows([("a",), ("b",)], "tid_r", ["v"])
        assert len(u) == 2
        assert all(d.empty for d, _, _ in u)
        tids = [tids[0] for _, tids, _ in u]
        assert tids == [1, 2]

    def test_empty_relation(self):
        u = URelation.build([], "tid_r", ["v"])
        assert len(u) == 0 and u.d_width == 1


class TestIteration:
    def test_triples_decode(self, u):
        triples = u.tuples()
        assert triples[0] == (Descriptor(), ("t1",), ("a",))
        assert triples[2][0] == Descriptor(x=2, y=1)

    def test_descriptors(self, u):
        assert u.descriptors() == [Descriptor(), Descriptor(x=1), Descriptor(x=2, y=1)]


class TestEquality:
    def test_logical_equality_ignores_padding(self, u):
        wider = u.repadded(4)
        assert wider.d_width == 4
        assert wider == u

    def test_different_values_unequal(self, u):
        other = URelation.build([(Descriptor(), "t1", ("zzz",))], "tid_r", ["v"])
        assert u != other

    def test_different_structure_unequal(self, u):
        other = URelation.build([(Descriptor(), "t1", ("a",))], "tid_q", ["v"])
        assert u != other


class TestTransformations:
    def test_repadded_roundtrip(self, u):
        assert u.repadded(5).compacted() == u

    def test_compacted_minimizes_width(self):
        u = URelation.build(
            [(Descriptor(x=1), 1, ("a",))], "tid_r", ["v"], d_width=4
        )
        assert u.compacted().d_width == 1

    def test_compacted_dedupes(self):
        u = URelation.build(
            [(Descriptor(x=1), 1, ("a",)), (Descriptor(x=1), 1, ("a",))],
            "tid_r",
            ["v"],
        )
        assert len(u.compacted()) == 1

    def test_rename_values(self, u):
        renamed = u.rename_values({"v": "o.v"})
        assert renamed.value_names == ("o.v",)
        assert renamed.schema.names[-1] == "o.v"

    def test_rename_tid(self, u):
        renamed = u.rename_tid("tid_r", "tid_o2")
        assert renamed.tid_names == ("tid_o2",)

    def test_pretty_renders(self, u):
        out = u.pretty()
        assert "tid_r" in out and "{x->1}" in out
