"""The invalidation test matrix for the prepared-plan cache (UDatabase).

Each catalog mutation — ``create(replace=True)``, ``CREATE INDEX``,
``DROP INDEX``, ``DROP TABLE``, world-table growth via ``to_database()``,
and the lazy partition-index first build — must bump the catalog version
and evict exactly the dependent entries: a stale-plan execution must be
impossible to observe, and unrelated cached plans must keep hitting.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Descriptor,
    Poss,
    Rel,
    UProject,
    URelation,
    USelect,
    UDatabase,
    WorldTable,
)
from repro.core.translate import execute_query
from repro.relational import col, lit, plan_cache_stats
from repro.relational.index import indexes_on
from repro.relational.relation import Relation
from repro.sql import execute_sql

from tests.conftest import build_vehicles_udb


def q_type():
    """A query whose minimal cover is only the ``type`` partition of ``r``."""
    return Poss(UProject(USelect(Rel("r"), col("type").eq(lit("Tank"))), ["type"]))


def q_faction():
    """A query whose minimal cover is only the ``faction`` partition."""
    return Poss(
        UProject(USelect(Rel("r"), col("faction").eq(lit("Friend"))), ["faction"])
    )


def warm(udb, *queries):
    """Run each query twice; assert the second run is planning-free."""
    answers = []
    for query in queries:
        answers.append(execute_query(query, udb))
        misses = plan_cache_stats()["misses"]
        again = execute_query(query, udb)
        assert plan_cache_stats()["misses"] == misses, "second run re-planned"
        assert again == answers[-1]
    return answers


class TestInvalidationMatrix:
    def test_create_replace_evicts_dependents_only(self):
        udb = build_vehicles_udb()
        db = udb.to_database()
        tank, friend = warm(udb, q_type(), q_faction())
        version = udb.catalog_version
        db_version = db.catalog_version

        # replace the type partition's relation through the catalog view
        old = db.get("u_r_type")
        rows = [r for r in old.rows if r[2] != "Tank"]  # drop the Tank rows
        db.create("u_r_type", Relation(old.schema, rows), replace=True)

        assert udb.catalog_version > version
        assert db.catalog_version > db_version
        assert plan_cache_stats()["invalidations"] >= 1
        # the faction query's plan survived: still hit
        hits = plan_cache_stats()["hits"]
        assert execute_query(q_faction(), udb) == friend
        assert plan_cache_stats()["hits"] == hits + 1
        # note: udb partitions still hold the *old* relation object, so the
        # logical query over `r` replans against them; the eviction is what
        # guarantees no stale physical tree survives the catalog change
        misses = plan_cache_stats()["misses"]
        execute_query(q_type(), udb)
        assert plan_cache_stats()["misses"] == misses + 1

    def test_create_index_evicts_dependents_only(self):
        udb = build_vehicles_udb()
        tank, friend = warm(udb, q_type(), q_faction())
        version = udb.catalog_version
        execute_sql("create index idx_extra on u_r_type (type) using hash", udb)
        assert udb.catalog_version > version
        assert plan_cache_stats()["invalidations"] >= 1
        # faction survived, type re-plans (it may now use the index)
        hits = plan_cache_stats()["hits"]
        assert execute_query(q_faction(), udb) == friend
        assert plan_cache_stats()["hits"] == hits + 1
        misses = plan_cache_stats()["misses"]
        assert execute_query(q_type(), udb) == tank
        assert plan_cache_stats()["misses"] == misses + 1

    def test_drop_index_evicts_dependents_only(self):
        udb = build_vehicles_udb()
        execute_sql("create index idx_extra on u_r_type (type) using hash", udb)
        tank, friend = warm(udb, q_type(), q_faction())
        version = udb.catalog_version
        execute_sql("drop index idx_extra", udb)
        assert udb.catalog_version > version
        hits = plan_cache_stats()["hits"]
        assert execute_query(q_faction(), udb) == friend
        assert plan_cache_stats()["hits"] == hits + 1
        misses = plan_cache_stats()["misses"]
        assert execute_query(q_type(), udb) == tank
        assert plan_cache_stats()["misses"] == misses + 1

    def test_drop_table_evicts_dependents_only(self):
        from repro.relational.algebra import Select

        udb = build_vehicles_udb()
        db = udb.to_database()
        # cache one Database-level plan per table
        db.run(Select(db.scan("u_r_type"), col("type").eq(lit("Tank"))))
        over_faction_plan = Select(
            db.scan("u_r_faction"), col("faction").eq(lit("Friend"))
        )
        db.run(over_faction_plan)
        size = plan_cache_stats()["size"]
        version = db.catalog_version
        db.drop("u_r_type")
        assert db.catalog_version > version
        stats = plan_cache_stats()
        assert stats["invalidations"] >= 1
        assert stats["size"] < size
        hits = stats["hits"]
        db.run(over_faction_plan)  # unrelated entry survived
        assert plan_cache_stats()["hits"] == hits + 1

    def test_world_growth_evicts_w_dependents_only(self):
        udb = build_vehicles_udb()
        db = udb.to_database()
        from repro.relational.algebra import Select

        w_plan = Select(db.scan("w"), col("var").eq(lit("x")))
        partition_plan = Select(db.scan("u_r_type"), col("type").eq(lit("Tank")))
        db.run(w_plan)
        db.run(partition_plan)
        version = udb.catalog_version
        udb.world_table.add_variable("v_new", [1, 2])
        assert udb.catalog_version > version  # growth bumps immediately
        db = udb.to_database()  # refreshes the w snapshot
        assert plan_cache_stats()["invalidations"] >= 1
        # the partition plan survived the w refresh
        hits = plan_cache_stats()["hits"]
        db.run(partition_plan)
        assert plan_cache_stats()["hits"] == hits + 1
        # a fresh w plan over the new snapshot sees the new variable
        fresh = Select(db.scan("w"), col("var").eq(lit("v_new")))
        assert len(db.run(fresh)) == 2

    def test_lazy_partition_index_first_build_bumps_and_evicts(self):
        """The deferred auto-index build is a catalog mutation: it bumps
        the version, and a plan cached *without* access paths re-plans."""
        w = WorldTable({"x": [1, 2]})
        part = URelation.build(
            [(Descriptor(), f"t{i}", (i % 4,)) for i in range(16)],
            tid_name="tid_s",
            value_names=["v"],
        )
        udb = UDatabase(w)  # auto_index=True, lazy by default
        udb.add_relation("s", ["v"], [part])
        assert not getattr(part.relation, "_indexes", None)  # still deferred

        # cache a plan that bypasses access-path discovery entirely
        query = Poss(USelect(Rel("s"), col("v").eq(lit(1))))
        no_index = execute_query(query, udb, use_indexes=False)
        version = udb.catalog_version
        size = plan_cache_stats()["size"]

        # first *indexed* planning materializes the deferred definitions
        indexed = execute_query(query, udb)
        assert indexes_on(part.relation)  # now built
        assert udb.catalog_version > version
        assert indexed == no_index
        # the build evicted the dependent no-index entry: it re-plans
        misses = plan_cache_stats()["misses"]
        assert execute_query(query, udb, use_indexes=False) == no_index
        assert plan_cache_stats()["misses"] == misses + 1

    def test_add_relation_replacement_evicts(self):
        udb = build_vehicles_udb()
        (tank,) = warm(udb, q_type())
        version = udb.catalog_version
        # re-register r with the same partitions (a partition swap in place)
        udb.add_relation("r", ["id", "type", "faction"], udb.partitions("r"))
        assert udb.catalog_version > version
        misses = plan_cache_stats()["misses"]
        assert execute_query(q_type(), udb) == tank
        assert plan_cache_stats()["misses"] == misses + 1

    def test_stale_execution_impossible_through_sql(self):
        """End to end: warm plan, mutate through every SQL-visible channel,
        and verify the answers always reflect the current catalog."""
        udb = build_vehicles_udb()
        sql = "possible (select id from r where type = 'Tank')"
        first = execute_sql(sql, udb)
        execute_sql("create index idx_probe on u_r_type (type) using sorted", udb)
        second = execute_sql(sql, udb)
        assert first == second
        execute_sql("drop index idx_probe", udb)
        assert execute_sql(sql, udb) == first
