"""Tests for the world-creation primitives (repair-key / pick-tuples)."""

import pytest

from repro.core import (
    Poss,
    Rel,
    UDatabase,
    UProject,
    USelect,
    WorldTable,
    execute_query,
    tuple_confidences,
)
from repro.core.worldops import pick_tuples, repair_key
from repro.relational import Relation, col, lit


@pytest.fixture
def dirty():
    """A dirty relation: ssn should be a key but has duplicate groups."""
    return Relation(
        ["ssn", "name", "w"],
        [
            (1, "Ann", 3.0),
            (1, "Annie", 1.0),
            (2, "Bob", 1.0),
            (3, "Cat", 1.0),
            (3, "Kat", 1.0),
            (3, "Cathy", 2.0),
        ],
    )


class TestRepairKey:
    def test_world_count_is_product_of_group_sizes(self, dirty):
        udb = repair_key(UDatabase(WorldTable()), "people", dirty, key=["ssn"])
        assert udb.world_count() == 2 * 1 * 3

    def test_every_world_is_a_key_repair(self, dirty):
        udb = repair_key(UDatabase(WorldTable()), "people", dirty, key=["ssn"])
        for _val, instances in udb.worlds():
            rows = instances["people"].rows
            ssns = [row[0] for row in rows]
            assert sorted(ssns) == [1, 2, 3]  # exactly one tuple per key

    def test_all_repairs_occur(self, dirty):
        udb = repair_key(UDatabase(WorldTable()), "people", dirty, key=["ssn"])
        names_for_3 = set()
        for _val, instances in udb.worlds():
            for row in instances["people"].rows:
                if row[0] == 3:
                    names_for_3.add(row[1])
        assert names_for_3 == {"Cat", "Kat", "Cathy"}

    def test_weights_normalized(self, dirty):
        udb = repair_key(
            UDatabase(WorldTable()), "people", dirty, key=["ssn"], weight="w"
        )
        result = execute_query(
            USelect(Rel("people"), col("ssn").eq(lit(1))), udb
        )
        confs = tuple_confidences(result, udb.world_table)
        assert confs[(1, "Ann")] == pytest.approx(0.75)
        assert confs[(1, "Annie")] == pytest.approx(0.25)

    def test_weight_attribute_dropped_from_schema(self, dirty):
        udb = repair_key(
            UDatabase(WorldTable()), "people", dirty, key=["ssn"], weight="w"
        )
        assert udb.logical_schema("people").attributes == ("ssn", "name")

    def test_nonpositive_weight_rejected(self):
        bad = Relation(["k", "v", "w"], [(1, "a", 0.0), (1, "b", 0.0)])
        with pytest.raises(ValueError, match="weight"):
            repair_key(UDatabase(WorldTable()), "r", bad, key=["k"], weight="w")

    def test_singleton_groups_certain(self, dirty):
        udb = repair_key(UDatabase(WorldTable()), "people", dirty, key=["ssn"])
        from repro.core import Certain

        certain = execute_query(
            Certain(UProject(Rel("people"), ["name"])), udb
        )
        assert ("Bob",) in set(certain.rows)

    def test_composes_with_queries(self, dirty):
        udb = repair_key(UDatabase(WorldTable()), "people", dirty, key=["ssn"])
        answer = execute_query(
            Poss(UProject(USelect(Rel("people"), col("ssn").eq(lit(3))), ["name"])),
            udb,
        )
        assert set(answer.rows) == {("Cat",), ("Kat",), ("Cathy",)}


class TestPickTuples:
    def test_world_count(self):
        r = Relation(["v"], [("a",), ("b",)])
        udb = pick_tuples(UDatabase(WorldTable()), "r", r, probability=0.5)
        assert udb.world_count() == 4

    def test_all_subsets_possible(self):
        r = Relation(["v"], [("a",), ("b",)])
        udb = pick_tuples(UDatabase(WorldTable()), "r", r, probability=0.5)
        subsets = {frozenset(i["r"].rows) for _, i in udb.worlds()}
        assert len(subsets) == 4

    def test_confidences_match_probability(self):
        r = Relation(["v"], [("a",)])
        udb = pick_tuples(UDatabase(WorldTable()), "r", r, probability=0.3)
        result = execute_query(Rel("r"), udb)
        confs = tuple_confidences(result, udb.world_table)
        assert confs[("a",)] == pytest.approx(0.3)

    def test_per_tuple_weights(self):
        r = Relation(["v", "p"], [("a", 0.9), ("b", 1.0)])
        udb = pick_tuples(UDatabase(WorldTable()), "r", r, weight="p")
        result = execute_query(Rel("r"), udb)
        confs = tuple_confidences(result, udb.world_table)
        assert confs[("a",)] == pytest.approx(0.9)
        assert confs[("b",)] == 1.0  # weight 1 stays certain

    def test_invalid_probability_rejected(self):
        r = Relation(["v"], [("a",)])
        with pytest.raises(ValueError):
            pick_tuples(UDatabase(WorldTable()), "r", r, probability=0.0)

    def test_combines_with_repair_key(self, tmp_path):
        """Both primitives in one database, queried jointly."""
        dirty = Relation(["k", "v"], [(1, "x"), (1, "y")])
        maybe = Relation(["v"], [("x",)])
        udb = UDatabase(WorldTable())
        repair_key(udb, "r", dirty, key=["k"])
        pick_tuples(udb, "s", maybe, probability=0.5)
        assert udb.world_count() == 4
        from repro.core import UJoin

        q = Poss(
            UJoin(Rel("r", "a"), Rel("s", "b"), col("a.v").eq(col("b.v")))
        )
        answer = execute_query(q, udb)
        assert set(answer.rows) == {(1, "x", "x")}
