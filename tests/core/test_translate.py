"""Tests for the Figure 4 translation — checked against the paper's worked
examples (3.6, 3.7) and the brute-force per-world oracle."""

import pytest

from repro.core import (
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UJoin,
    UMerge,
    UProject,
    URelation,
    USelect,
    UUnion,
    WorldTable,
    execute_query,
    translate,
)
from repro.core.translate import alpha_condition, psi_condition
from repro.core.urelation import tid_column
from repro.relational import col, lit
from tests.conftest import brute_force_poss


def poss_rows(query, udb):
    return set(execute_query(Poss(query), udb).rows)


class TestPsiAlpha:
    def test_psi_shape(self):
        psi = psi_condition(1, 1, 1)
        text = repr(psi)
        assert "c1" in text and "c2" in text and "w1" in text and "w2" in text
        assert "OR" in text

    def test_psi_pair_count(self):
        from repro.relational.expressions import And

        psi = psi_condition(2, 3, 2)
        assert isinstance(psi, And)
        assert len(psi.operands) == 6  # 2 x 3 disjunctions

    def test_alpha(self):
        alpha = alpha_condition(["tid_r"], "__r")
        assert "tid_r__r" in repr(alpha)


class TestExample36:
    """Example 3.6: ids of enemy tanks on the Figure 1 database."""

    def query(self):
        return UProject(
            USelect(
                Rel("r"),
                col("type").eq(lit("Tank")) & col("faction").eq(lit("Enemy")),
            ),
            ["id"],
        )

    def test_u4_contents(self, vehicles_udb):
        u4 = execute_query(self.query(), vehicles_udb)
        triples = {(d, v) for d, _t, v in u4}
        assert triples == {
            (Descriptor(x=1), (3,)),
            (Descriptor(x=2), (2,)),
            (Descriptor(y=1, z=2), (4,)),
        }

    def test_poss_matches_oracle(self, vehicles_udb):
        q = self.query()
        assert poss_rows(q, vehicles_udb) == brute_force_poss(q, vehicles_udb)

    def test_result_is_valid_urelation(self, vehicles_udb):
        u4 = execute_query(self.query(), vehicles_udb)
        assert u4.value_names == ("id",)
        assert u4.tid_names == ("tid_r",)


class TestExample37:
    """Example 3.7: self-join — pairs of enemy tanks."""

    def query(self):
        def side(alias):
            return UProject(
                USelect(
                    Rel("r", alias),
                    col(f"{alias}.type").eq(lit("Tank"))
                    & col(f"{alias}.faction").eq(lit("Enemy")),
                ),
                [f"{alias}.id"],
            )

        return UJoin(side("s1"), side("s2"), col("s1.id").ne(col("s2.id")))

    def test_u5_psi_filters_inconsistent(self, vehicles_udb):
        """c at two positions at once must be filtered by ψ (the paper's U5)."""
        u5 = execute_query(self.query(), vehicles_udb)
        values = {v for _d, _t, v in u5}
        # (3,2) and (2,3) would need x=1 and x=2 simultaneously
        assert (3, 2) not in values and (2, 3) not in values
        assert values == {(3, 4), (2, 4), (4, 3), (4, 2)}

    def test_poss_matches_oracle(self, vehicles_udb):
        q = self.query()
        assert poss_rows(q, vehicles_udb) == brute_force_poss(q, vehicles_udb)

    def test_self_join_without_alias_rejected(self, vehicles_udb):
        q = UJoin(Rel("r"), Rel("r"), col("id").eq(col("id")))
        with pytest.raises((ValueError, KeyError)):
            execute_query(q, vehicles_udb)


class TestOperators:
    def test_projection_single_partition_no_merge(self, vehicles_udb):
        """On reduced inputs, projecting one attribute reads one partition."""
        translated = translate(UProject(Rel("r"), ["type"]), vehicles_udb)
        assert translated.value_names == ("type",)
        from repro.relational.algebra import Join as AlgebraJoin

        def count_joins(plan):
            n = 1 if isinstance(plan, AlgebraJoin) else 0
            return n + sum(count_joins(c) for c in plan.children)

        assert count_joins(translated.plan) == 0

    def test_selection_then_projection(self, vehicles_udb):
        q = UProject(USelect(Rel("r"), col("faction").eq(lit("Enemy"))), ["id"])
        assert poss_rows(q, vehicles_udb) == brute_force_poss(q, vehicles_udb)

    def test_merge_explicit(self, vehicles_udb):
        q = UMerge(UProject(Rel("r"), ["id"]), UProject(Rel("r"), ["type"]))
        assert poss_rows(q, vehicles_udb) == brute_force_poss(q, vehicles_udb)

    def test_union(self, vehicles_udb):
        left = UProject(USelect(Rel("r"), col("faction").eq(lit("Enemy"))), ["id"])
        right = UProject(USelect(Rel("r"), col("type").eq(lit("Tank"))), ["id"])
        q = UUnion(left, right)
        assert poss_rows(q, vehicles_udb) == brute_force_poss(q, vehicles_udb)

    def test_union_mismatched_widths(self, vehicles_udb):
        """Union branches with different descriptor widths get padded."""
        narrow = UProject(Rel("r"), ["id"])  # width 1 descriptors
        wide = UProject(
            USelect(
                Rel("r"),
                col("type").eq(lit("Tank")) & col("faction").eq(lit("Enemy")),
            ),
            ["id"],
        )  # selection over merged partitions -> width 3
        q = UUnion(wide, narrow)
        assert poss_rows(q, vehicles_udb) == brute_force_poss(q, vehicles_udb)

    def test_join_two_relations(self):
        w = WorldTable({"x": [1, 2]})
        u_r = URelation.build(
            [(Descriptor(x=1), 1, (1,)), (Descriptor(x=2), 1, (2,))],
            tid_column("r"),
            ["k"],
        )
        u_s = URelation.build(
            [(Descriptor(), 1, (1, "one")), (Descriptor(), 2, (2, "two"))],
            tid_column("s"),
            ["k2", "label"],
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["k"], [u_r])
        udb.add_relation("s", ["k2", "label"], [u_s])
        q = UJoin(Rel("r"), Rel("s"), col("k").eq(col("k2")))
        assert poss_rows(q, udb) == brute_force_poss(q, udb)
        assert poss_rows(q, udb) == {(1, 1, "one"), (2, 2, "two")}

    def test_value_name_collision_rejected(self):
        w = WorldTable()
        u_r = URelation.build([(Descriptor(), 1, (1,))], tid_column("r"), ["k"])
        u_s = URelation.build([(Descriptor(), 1, (1,))], tid_column("s"), ["k"])
        udb = UDatabase(w)
        udb.add_relation("r", ["k"], [u_r])
        udb.add_relation("s", ["k"], [u_s])
        q = UJoin(Rel("r"), Rel("s"), col("r.k").eq(col("s.k")))
        with pytest.raises((ValueError, KeyError)):
            execute_query(q, udb)

    def test_aliases_resolve_collision(self):
        w = WorldTable()
        u_r = URelation.build([(Descriptor(), 1, (1,))], tid_column("r"), ["k"])
        u_s = URelation.build([(Descriptor(), 1, (1,))], tid_column("s"), ["k"])
        udb = UDatabase(w)
        udb.add_relation("r", ["k"], [u_r])
        udb.add_relation("s", ["k"], [u_s])
        q = UJoin(Rel("r", "a"), Rel("s", "b"), col("a.k").eq(col("b.k")))
        assert poss_rows(q, udb) == {(1, 1)}

    def test_poss_inside_query_rejected(self, vehicles_udb):
        with pytest.raises(ValueError):
            translate(Poss(Rel("r")), vehicles_udb)


class TestReducedPreservation:
    def test_query_answers_are_reduced(self, vehicles_udb):
        """Prop 3.8: results on reduced inputs are reduced (every tuple
        can be completed — trivially true for tuple-level results whose
        descriptors are internally consistent)."""
        q = USelect(Rel("r"), col("type").eq(lit("Tank")))
        result = execute_query(q, vehicles_udb)
        for descriptor, _t, _v in result:
            # internally consistent descriptors only
            assert descriptor == Descriptor(dict(descriptor.items()))

    def test_optimized_equals_unoptimized(self, vehicles_udb):
        q = UProject(
            USelect(
                Rel("r"),
                col("type").eq(lit("Tank")) & col("faction").eq(lit("Enemy")),
            ),
            ["id"],
        )
        a = execute_query(Poss(q), vehicles_udb, optimize=True)
        b = execute_query(Poss(q), vehicles_udb, optimize=False)
        assert set(a.rows) == set(b.rows)

    def test_merge_join_planner_agrees(self, vehicles_udb):
        q = UProject(USelect(Rel("r"), col("faction").eq(lit("Enemy"))), ["id"])
        a = execute_query(Poss(q), vehicles_udb, prefer_merge_join=False)
        b = execute_query(Poss(q), vehicles_udb, prefer_merge_join=True)
        assert set(a.rows) == set(b.rows)
