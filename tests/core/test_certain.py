"""Tests for certain answers (Lemma 4.3) against the brute-force oracle."""

import pytest

from repro.core import (
    Certain,
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UProject,
    URelation,
    USelect,
    WorldTable,
    certain_answers,
    execute_query,
)
from repro.core.urelation import tid_column
from repro.relational import col, lit
from tests.conftest import brute_force_certain


class TestLemma43Direct:
    def test_variable_covering_all_values_is_certain(self):
        w = WorldTable({"x": [1, 2]})
        # value 'a' present for x=1 (tid 1) and x=2 (tid 2): certain
        u = URelation.build(
            [
                (Descriptor(x=1), 1, ("a",)),
                (Descriptor(x=2), 2, ("a",)),
                (Descriptor(x=1), 3, ("b",)),
            ],
            tid_column("r"),
            ["v"],
        )
        answer = certain_answers(u, w)
        assert set(answer.rows) == {("a",)}

    def test_empty_descriptor_certain(self):
        w = WorldTable({"x": [1, 2]})
        u = URelation.build(
            [(Descriptor(), 1, ("a",)), (Descriptor(x=1), 2, ("b",))],
            tid_column("r"),
            ["v"],
        )
        assert set(certain_answers(u, w).rows) == {("a",)}

    def test_nothing_certain(self):
        w = WorldTable({"x": [1, 2], "y": [1, 2]})
        u = URelation.build(
            [(Descriptor(x=1), 1, ("a",)), (Descriptor(y=2), 2, ("b",))],
            tid_column("r"),
            ["v"],
        )
        assert set(certain_answers(u, w).rows) == set()

    def test_wide_descriptors_normalized_first(self):
        """Certainty via a fused component: a present under both values of x
        through *different* conjunctions."""
        w = WorldTable({"x": [1, 2], "y": [1, 2]})
        u = URelation.build(
            [
                (Descriptor(x=1, y=1), 1, ("a",)),
                (Descriptor(x=1, y=2), 1, ("a",)),
                (Descriptor(x=2, y=1), 2, ("a",)),
                (Descriptor(x=2, y=2), 2, ("a",)),
            ],
            tid_column("r"),
            ["v"],
        )
        assert set(certain_answers(u, w).rows) == {("a",)}

    def test_partial_cover_not_certain(self):
        w = WorldTable({"x": [1, 2], "y": [1, 2]})
        u = URelation.build(
            [
                (Descriptor(x=1, y=1), 1, ("a",)),
                (Descriptor(x=2, y=1), 2, ("a",)),
                (Descriptor(x=1, y=2), 3, ("a",)),
            ],
            tid_column("r"),
            ["v"],
        )
        # world (x=2, y=2) lacks 'a'
        assert set(certain_answers(u, w).rows) == set()


class TestCertainQueries:
    def test_certain_ids_vehicles(self, vehicles_udb):
        q = UProject(Rel("r"), ["id"])
        answer = execute_query(Certain(q), vehicles_udb)
        assert set(answer.rows) == brute_force_certain(q, vehicles_udb)
        assert set(answer.rows) == {(1,), (2,), (3,), (4,)}

    def test_certain_enemy_tanks(self, vehicles_udb):
        q = UProject(
            USelect(
                Rel("r"),
                col("type").eq(lit("Tank")) & col("faction").eq(lit("Enemy")),
            ),
            ["id"],
        )
        answer = execute_query(Certain(q), vehicles_udb)
        assert set(answer.rows) == brute_force_certain(q, vehicles_udb)

    def test_certain_types(self, vehicles_udb):
        q = UProject(Rel("r"), ["type"])
        answer = execute_query(Certain(q), vehicles_udb)
        assert set(answer.rows) == brute_force_certain(q, vehicles_udb)
        # Tank (vehicle a) and Transport (vehicle b) exist in every world
        assert set(answer.rows) == {("Tank",), ("Transport",)}

    def test_certain_subset_of_possible(self, vehicles_udb):
        q = UProject(USelect(Rel("r"), col("faction").eq(lit("Enemy"))), ["id"])
        certain = set(execute_query(Certain(q), vehicles_udb).rows)
        possible = set(execute_query(Poss(q), vehicles_udb).rows)
        assert certain <= possible

    def test_multi_tid_results_flattened(self, vehicles_udb):
        """Certain answers over join results (multiple tid columns)."""
        from repro.core import UJoin

        left = UProject(Rel("r", "s1"), ["s1.id"])
        right = UProject(Rel("r", "s2"), ["s2.type"])
        q = UJoin(left, right, col("s1.id").eq(lit(1)))
        answer = execute_query(Certain(q), vehicles_udb)
        assert set(answer.rows) == brute_force_certain(q, vehicles_udb)

    def test_empty_result_certain_empty(self, vehicles_udb):
        q = USelect(Rel("r"), col("type").eq(lit("Submarine")))
        answer = execute_query(Certain(q), vehicles_udb)
        assert len(answer) == 0
