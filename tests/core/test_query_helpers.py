"""Tests for query-tree helpers and the per-world oracle edge cases."""

import pytest

from repro.core import (
    Descriptor,
    Poss,
    Rel,
    UDatabase,
    UJoin,
    UMerge,
    UProject,
    URelation,
    USelect,
    UUnion,
    WorldTable,
    evaluate_in_world,
)
from repro.core.query import query_relations, referenced_attributes
from repro.core.urelation import tid_column
from repro.relational import Relation, col, lit


class TestQueryRelations:
    def test_leaves_in_order(self):
        q = UJoin(Rel("a"), UJoin(Rel("b"), Rel("c"), lit(1).eq(lit(1))), lit(1).eq(lit(1)))
        assert [r.name for r in query_relations(q)] == ["a", "b", "c"]

    def test_single_rel(self):
        (r,) = query_relations(Rel("only"))
        assert r.name == "only"

    def test_through_unary_nodes(self):
        q = Poss(UProject(USelect(Rel("r"), lit(1).eq(lit(1))), []))
        assert [r.name for r in query_relations(q)] == ["r"]


class TestReferencedAttributes:
    def test_collects_predicates_and_projections(self):
        q = UProject(
            USelect(Rel("r"), col("a").eq(col("b"))),
            ["c"],
        )
        assert referenced_attributes(q) == {"a", "b", "c"}

    def test_join_predicates_included(self):
        q = UJoin(Rel("r"), Rel("s"), col("x").eq(col("y")))
        assert referenced_attributes(q) == {"x", "y"}


class TestOracleEdgeCases:
    def instances(self):
        return {
            "r": Relation(["a", "b"], [(1, "x"), (2, "y")]),
            "s": Relation(["c"], [(1,), (3,)]),
        }

    def test_rel_with_alias_qualifies(self):
        out = evaluate_in_world(Rel("r", "t"), self.instances())
        assert out.schema.names == ["t.a", "t.b"]

    def test_poss_rejected_inside(self):
        with pytest.raises(ValueError):
            evaluate_in_world(Poss(Rel("r")), self.instances())

    def test_join_is_filtered_product(self):
        q = UJoin(Rel("r"), Rel("s"), col("a").eq(col("c")))
        out = evaluate_in_world(q, self.instances())
        assert set(out.rows) == {(1, "x", 1)}

    def test_union_positional(self):
        q = UUnion(UProject(Rel("r"), ["a"]), Rel("s"))
        out = evaluate_in_world(q, self.instances())
        assert set(out.rows) == {(1,), (2,), (3,)}

    def test_result_is_set(self):
        instances = {"r": Relation(["a"], [(1,), (1,)])}
        out = evaluate_in_world(Rel("r"), instances)
        assert out.rows == [(1,)]

    def test_merge_of_different_relations_rejected(self):
        q = UMerge(Rel("r"), Rel("s"))
        with pytest.raises(ValueError, match="same relation"):
            evaluate_in_world(q, self.instances())

    def test_merge_with_selections_combines_predicates(self):
        q = UMerge(
            USelect(UProject(Rel("r"), ["a"]), col("a") > lit(0)),
            UProject(Rel("r"), ["b"]),
        )
        out = evaluate_in_world(q, self.instances())
        assert set(out.rows) == {(1, "x"), (2, "y")}


class TestUDatabaseViews:
    def test_to_database_runs_queries(self, vehicles_udb):
        from repro.relational import Select

        db = vehicles_udb.to_database()
        plan = Select(db.scan("u_r_faction"), col("faction").eq(lit("Enemy")))
        out = db.run(plan)
        assert len(out) == 2  # c (certain) and d (z=2)

    def test_world_table_exposed(self, vehicles_udb):
        db = vehicles_udb.to_database()
        w = db.get("w")
        assert ("x", 1) in w.rows and ("x", 2) in w.rows

    def test_repr_mentions_partitions(self, vehicles_udb):
        assert "r[3 parts]" in repr(vehicles_udb)
