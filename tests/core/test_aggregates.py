"""Tests for aggregation over uncertain results (the future-work extension)."""

import pytest

from repro.core import (
    Descriptor,
    Rel,
    UDatabase,
    URelation,
    USelect,
    WorldTable,
    execute_query,
)
from repro.core.aggregates import (
    aggregate_distribution,
    count_bounds,
    expected_count,
    expected_sum,
    sum_bounds,
)
from repro.core.urelation import tid_column
from repro.relational import col, lit


@pytest.fixture
def setup():
    world = WorldTable(
        {"x": [1, 2], "y": [1, 2]},
        probabilities={"x": [0.25, 0.75], "y": [0.5, 0.5]},
    )
    u = URelation.build(
        [
            (Descriptor(), 1, ("a", 10)),          # always present
            (Descriptor(x=1), 2, ("b", 20)),       # p = 0.25
            (Descriptor(y=2), 3, ("c", 40)),       # p = 0.5
        ],
        tid_column("r"),
        ["name", "amount"],
    )
    udb = UDatabase(world)
    udb.add_relation("r", ["name", "amount"], [u])
    result = execute_query(Rel("r"), udb)
    return udb, result


def brute_force_expectation(udb, fn):
    total = 0.0
    for valuation in udb.world_table.valuations():
        p = udb.world_table.valuation_probability(valuation)
        rows = udb.instantiate(valuation, "r").rows
        total += p * fn(rows)
    return total


class TestExpectedAggregates:
    def test_expected_count_exact(self, setup):
        udb, result = setup
        expected = brute_force_expectation(udb, len)
        assert expected_count(result, udb.world_table) == pytest.approx(expected)
        assert expected_count(result, udb.world_table) == pytest.approx(1.75)

    def test_expected_sum_exact(self, setup):
        udb, result = setup
        expected = brute_force_expectation(
            udb, lambda rows: sum(r[1] for r in rows)
        )
        assert expected_sum(result, "amount", udb.world_table) == pytest.approx(
            expected
        )
        assert expected_sum(result, "amount", udb.world_table) == pytest.approx(
            10 + 0.25 * 20 + 0.5 * 40
        )

    def test_expected_sum_after_selection(self, setup):
        udb, _ = setup
        result = execute_query(
            USelect(Rel("r"), col("amount") > lit(15)), udb
        )
        assert expected_sum(result, "amount", udb.world_table) == pytest.approx(
            0.25 * 20 + 0.5 * 40
        )

    def test_null_values_skipped(self):
        world = WorldTable({"x": [1, 2]})
        u = URelation.build(
            [(Descriptor(), 1, (None,)), (Descriptor(x=1), 2, (8,))],
            tid_column("r"),
            ["v"],
        )
        udb = UDatabase(world)
        udb.add_relation("r", ["v"], [u])
        result = execute_query(Rel("r"), udb)
        assert expected_sum(result, "v", world) == pytest.approx(4.0)


class TestBounds:
    def test_count_bounds(self, setup):
        udb, result = setup
        assert count_bounds(result, udb.world_table) == (1, 3)

    def test_sum_bounds_nonnegative(self, setup):
        udb, result = setup
        assert sum_bounds(result, "amount", udb.world_table) == (10.0, 70.0)

    def test_sum_bounds_with_negatives(self):
        world = WorldTable({"x": [1, 2]})
        u = URelation.build(
            [(Descriptor(), 1, (5,)), (Descriptor(x=1), 2, (-3,))],
            tid_column("r"),
            ["v"],
        )
        udb = UDatabase(world)
        udb.add_relation("r", ["v"], [u])
        result = execute_query(Rel("r"), udb)
        assert sum_bounds(result, "v", world) == (2.0, 5.0)

    def test_bounds_reached_in_actual_worlds(self, setup):
        udb, result = setup
        counts = set()
        for valuation in udb.world_table.valuations():
            counts.add(len(udb.instantiate(valuation, "r").rows))
        lo, hi = count_bounds(result, udb.world_table)
        assert min(counts) == lo and max(counts) == hi


class TestDistribution:
    def test_count_distribution_converges(self, setup):
        udb, result = setup
        dist = aggregate_distribution(
            result, udb.world_table, aggregate=len, samples=8000, seed=4
        )
        # exact: P(count=1) = P(x=2, y=1) = 0.375
        assert dist.get(1, 0) == pytest.approx(0.375, abs=0.03)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_max_aggregate(self, setup):
        udb, result = setup

        def max_amount(rows):
            return max((r[1] for r in rows), default=0)

        dist = aggregate_distribution(
            result, udb.world_table, aggregate=max_amount, samples=8000, seed=4
        )
        # max = 40 iff y=2 (p = 0.5)
        assert dist.get(40, 0) == pytest.approx(0.5, abs=0.03)

    def test_deterministic_given_seed(self, setup):
        udb, result = setup
        a = aggregate_distribution(result, udb.world_table, len, samples=100, seed=1)
        b = aggregate_distribution(result, udb.world_table, len, samples=100, seed=1)
        assert a == b
