"""Tests for UDatabase save/load."""

import csv
import os

import pytest

from repro.core import Descriptor, UDatabase, URelation, WorldTable
from repro.core.persist import load_udatabase, save_udatabase
from repro.core.urelation import tid_column


def worldset(udb, name):
    return frozenset(frozenset(i[name].rows) for _, i in udb.worlds())


def _sql_udb():
    """A certain two-partition relation whose tids are ints, like SQL's.

    The vehicles fixture uses string tids; SQL DML allocates integer
    tids.  Both coexist as separate segment *files*, but compaction
    merges segments into one CSV column — which, like any relation
    column, must stay type-homogeneous to round-trip.
    """
    udb = UDatabase(auto_index=False)
    tid = tid_column("r")
    p_id = URelation.build(
        [(Descriptor(), i, (i,)) for i in range(3)], tid, ["id"]
    )
    p_type = URelation.build(
        [(Descriptor(), i, ("Tank",)) for i in range(3)], tid, ["type"]
    )
    udb.add_relation("r", ["id", "type"], [p_id, p_type])
    return udb


class TestRoundTrip:
    def test_vehicles_roundtrip(self, vehicles_udb, tmp_path):
        save_udatabase(vehicles_udb, tmp_path / "db")
        back = load_udatabase(tmp_path / "db")
        assert back.relation_names() == vehicles_udb.relation_names()
        assert back.world_count() == vehicles_udb.world_count()
        assert worldset(back, "r") == worldset(vehicles_udb, "r")

    def test_partition_structure_preserved(self, vehicles_udb, tmp_path):
        save_udatabase(vehicles_udb, tmp_path / "db")
        back = load_udatabase(tmp_path / "db")
        originals = vehicles_udb.partitions("r")
        restored = back.partitions("r")
        assert len(restored) == len(originals)
        for a, b in zip(sorted(originals, key=lambda p: p.value_names),
                        sorted(restored, key=lambda p: p.value_names)):
            assert a == b

    def test_files_mirror_paper_naming(self, vehicles_udb, tmp_path):
        save_udatabase(vehicles_udb, tmp_path / "db")
        names = {p.name for p in (tmp_path / "db").iterdir()}
        assert "u_r_id" in names
        assert "u_r_type" in names
        assert "w.csv" in names and "manifest.csv" in names
        # each partition directory holds its base segment file
        assert (tmp_path / "db" / "u_r_id" / "seg_000000.csv").exists()
        assert (tmp_path / "db" / "u_r_type" / "seg_000000.csv").exists()

    def test_probabilities_roundtrip(self, tmp_path):
        world = WorldTable({"x": [1, 2]}, probabilities={"x": [0.75, 0.25]})
        u = URelation.build(
            [(Descriptor(x=1), 1, ("a",)), (Descriptor(x=2), 1, ("b",))],
            tid_column("r"),
            ["v"],
        )
        udb = UDatabase(world)
        udb.add_relation("r", ["v"], [u])
        save_udatabase(udb, tmp_path / "p")
        back = load_udatabase(tmp_path / "p")
        assert back.world_table.probability("x", 1) == pytest.approx(0.75)

    def test_uniform_probabilities_stay_uniform(self, vehicles_udb, tmp_path):
        save_udatabase(vehicles_udb, tmp_path / "u")
        back = load_udatabase(tmp_path / "u")
        assert back.world_table.probability("x", 1) == pytest.approx(0.5)

    def test_queries_work_after_reload(self, vehicles_udb, tmp_path):
        from repro.core import Poss, Rel, UProject, USelect, execute_query
        from repro.relational import col, lit

        save_udatabase(vehicles_udb, tmp_path / "q")
        back = load_udatabase(tmp_path / "q")
        q = Poss(
            UProject(USelect(Rel("r"), col("faction").eq(lit("Enemy"))), ["id"])
        )
        assert set(execute_query(q, back).rows) == set(
            execute_query(q, vehicles_udb).rows
        )

    def test_generated_database_roundtrip(self, tmp_path):
        from repro.ugen import generate_uncertain

        bundle = generate_uncertain(
            scale=0.001, x=0.05, seed=8, tables=["nation", "region"]
        )
        save_udatabase(bundle.udb, tmp_path / "g")
        back = load_udatabase(tmp_path / "g")
        assert back.total_representation_rows() == bundle.udb.total_representation_rows()
        assert back.world_count() == bundle.udb.world_count()


class TestSegmentLog:
    """The log-structured contract: re-saving after DML appends, never
    rewrites."""

    def _snapshot(self, directory):
        return {
            path.relative_to(directory): (path.stat().st_mtime_ns, path.read_bytes())
            for path in directory.rglob("*")
            if path.is_file()
        }

    def test_save_after_inserts_rewrites_no_base_segment(
        self, vehicles_udb, tmp_path
    ):
        from repro.sql import execute_sql

        target = tmp_path / "db"
        save_udatabase(vehicles_udb, target)
        before = self._snapshot(target)
        for i in range(3):
            execute_sql(
                f"insert into r values ({100 + i}, 'Tank', 'Friend')", vehicles_udb
            )
        save_udatabase(vehicles_udb, target)
        after = self._snapshot(target)
        # every base segment file survives byte- and mtime-identical
        for path, (mtime, data) in before.items():
            if path.name.startswith("seg_"):
                assert after[path] == (mtime, data), path
        # each partition gained one appended segment file per statement
        for part in ("u_r_id", "u_r_type", "u_r_faction"):
            new = [
                p
                for p in after
                if p.parts[0] == part and p.name.startswith("seg_") and p not in before
            ]
            assert len(new) == 3, part

    def test_save_after_delete_touches_only_the_manifest(
        self, vehicles_udb, tmp_path
    ):
        from repro.sql import execute_sql

        target = tmp_path / "db"
        save_udatabase(vehicles_udb, target)
        before = self._snapshot(target)
        execute_sql("delete from r where id = 1", vehicles_udb)
        save_udatabase(vehicles_udb, target)
        after = self._snapshot(target)
        for path, payload in before.items():
            if path.name.startswith("seg_"):
                assert after[path] == payload, path
        # v3 carries the delete vector inline: no sidecar, non-empty column
        assert not any(path.name == "deleted.csv" for path in after)
        manifest = (target / "manifest.csv").read_text()
        rows = manifest.strip().splitlines()
        assert rows[0].split(",")[-1] == "deleted"
        assert any(line.rsplit(",", 1)[1] for line in rows[1:])

    def test_compaction_save_collapses_and_collects(self, tmp_path):
        from repro.sql import execute_sql

        udb = _sql_udb()
        target = tmp_path / "db"
        for i in range(6):
            execute_sql(f"insert into r values ({50 + i}, 'Tank')", udb)
        execute_sql("delete from r where id = 2", udb)
        save_udatabase(udb, target)
        stacked = sum(1 for p in target.rglob("seg_*.csv"))
        assert stacked > 3  # one per partition per statement plus bases
        udb.compact()
        save_udatabase(udb, target)
        # GC swept every superseded segment file: one base per partition
        for part_dir in (d for d in target.iterdir() if d.is_dir()):
            assert len(list(part_dir.glob("seg_*.csv"))) == 1, part_dir
        back = load_udatabase(target)
        assert _poss_rows(back, ("id", "type")) == _poss_rows(udb, ("id", "type"))

    def test_dml_roundtrip_preserves_answers_and_segments(
        self, vehicles_udb, tmp_path
    ):
        from repro.core import Poss, Rel, UProject, execute_query
        from repro.sql import execute_sql

        execute_sql("insert into r values (9, {'Tank', 'Jeep'}, 'Friend')", vehicles_udb)
        execute_sql("update r set faction = 'Enemy' where id = 9", vehicles_udb)
        execute_sql("delete from r where id = 1", vehicles_udb)
        save_udatabase(vehicles_udb, tmp_path / "db")
        back = load_udatabase(tmp_path / "db")
        # segment structure, delete vectors, and the minted variable survive
        for a, b in zip(
            sorted(vehicles_udb.partitions("r"), key=lambda p: p.value_names),
            sorted(back.partitions("r"), key=lambda p: p.value_names),
        ):
            assert [s.rows for s in a.relation.segments()] == [
                s.rows for s in b.relation.segments()
            ]
            assert a.relation.deleted_ordinals() == b.relation.deleted_ordinals()
        assert back.world_count() == vehicles_udb.world_count()
        query = Poss(UProject(Rel("r"), ["id", "type", "faction"]))
        assert set(execute_query(query, back).rows) == set(
            execute_query(query, vehicles_udb).rows
        )


def _poss_rows(udb, attributes=("id", "type", "faction")):
    from repro.core import Poss, Rel, UProject, execute_query

    query = Poss(UProject(Rel("r"), list(attributes)))
    return set(map(tuple, execute_query(query, udb).rows))


class TestCrashRecovery:
    """Fault injection: a save killed at any phase leaves the directory
    loading at exactly its last committed state."""

    def _churn(self, udb):
        from repro.sql import execute_sql

        for i in range(4):
            execute_sql(
                f"insert into r values ({70 + i}, 'Tank', 'Friend')", udb
            )
        execute_sql("delete from r where id = 3", udb)

    def test_crash_while_writing_segments(self, vehicles_udb, tmp_path, monkeypatch):
        from repro.core import persist

        target = tmp_path / "db"
        save_udatabase(vehicles_udb, target)
        committed = _poss_rows(load_udatabase(target))
        self._churn(vehicles_udb)

        real = persist.write_csv
        calls = {"n": 0}

        def flaky(relation, path):
            calls["n"] += 1
            if calls["n"] == 2:  # die mid-way through phase 1
                raise OSError("disk died while appending segments")
            return real(relation, path)

        monkeypatch.setattr(persist, "write_csv", flaky)
        with pytest.raises(OSError):
            save_udatabase(vehicles_udb, target)
        # the old manifest never saw the partial segments: old state loads
        assert _poss_rows(load_udatabase(target)) == committed

    def test_crash_at_manifest_rename(self, vehicles_udb, tmp_path, monkeypatch):
        from repro.core import persist

        target = tmp_path / "db"
        save_udatabase(vehicles_udb, target)
        committed = _poss_rows(load_udatabase(target))
        self._churn(vehicles_udb)

        def flaky(src, dst):
            if str(dst).endswith("manifest.csv"):
                raise OSError("power lost at the commit point")
            return os.replace(src, dst)

        monkeypatch.setattr(persist, "_rename", flaky)
        with pytest.raises(OSError):
            save_udatabase(vehicles_udb, target)
        assert _poss_rows(load_udatabase(target)) == committed
        # the recovery path: the same save, un-faulted, commits cleanly
        monkeypatch.setattr(persist, "_rename", os.replace)
        save_udatabase(vehicles_udb, target)
        assert _poss_rows(load_udatabase(target)) == _poss_rows(vehicles_udb)

    def test_crash_during_compaction_save(self, tmp_path, monkeypatch):
        from repro.core import persist
        from repro.sql import execute_sql

        udb = _sql_udb()
        target = tmp_path / "db"
        for i in range(4):
            execute_sql(f"insert into r values ({70 + i}, 'Tank')", udb)
        execute_sql("delete from r where id = 0", udb)
        save_udatabase(udb, target)
        committed = _poss_rows(load_udatabase(target), ("id", "type"))
        segment_files = sorted(p.name for p in target.rglob("seg_*.csv"))

        udb.compact()

        def flaky(src, dst):
            if str(dst).endswith("manifest.csv"):
                raise OSError("power lost committing the compacted manifest")
            return os.replace(src, dst)

        monkeypatch.setattr(persist, "_rename", flaky)
        with pytest.raises(OSError):
            save_udatabase(udb, target)
        # GC never ran: every file the committed manifest references is
        # still there, and the pre-compaction version loads bit-for-bit
        survivors = sorted(p.name for p in target.rglob("seg_*.csv"))
        assert set(segment_files) <= set(survivors)
        assert _poss_rows(load_udatabase(target), ("id", "type")) == committed
        monkeypatch.setattr(persist, "_rename", os.replace)
        save_udatabase(udb, target)
        back = load_udatabase(target)
        assert _poss_rows(back, ("id", "type")) == committed
        for part in back.partitions("r"):
            assert len(part.relation.segments()) == 1


class TestFormatBackCompat:
    """v1 (whole-CSV) and v2 (deleted.csv sidecar) directories still load."""

    def _downgrade_to_v2(self, target):
        """Rewrite a v3 directory in the v2 layout it superseded."""
        with open(target / "manifest.csv", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            entries = [dict(zip(header, row)) for row in reader]
        for entry in entries:
            spec = entry.pop("deleted", "")
            if spec:
                with open(
                    target / entry["part"] / "deleted.csv",
                    "w",
                    newline="",
                    encoding="utf-8",
                ) as handle:
                    writer = csv.writer(handle)
                    writer.writerow(["ordinal"])
                    writer.writerows([o] for o in spec.split("|"))
        v2_header = [c for c in header if c != "deleted"]
        with open(
            target / "manifest.csv", "w", newline="", encoding="utf-8"
        ) as handle:
            writer = csv.writer(handle)
            writer.writerow(v2_header)
            writer.writerows([e[c] for c in v2_header] for e in entries)

    def _downgrade_to_v1(self, target):
        """Rewrite a single-segment v3 directory in the pre-segment layout."""
        import shutil

        with open(target / "manifest.csv", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            entries = [dict(zip(header, row)) for row in reader]
        v1_rows = []
        for entry in entries:
            (segment_file,) = list((target / entry["part"]).glob("seg_*.csv"))
            flat = entry["part"] + ".csv"
            shutil.copy(segment_file, target / flat)
            shutil.rmtree(target / entry["part"])
            v1_rows.append(
                (
                    entry["relation"],
                    entry["attributes"],
                    entry["partition_values"],
                    flat,
                    entry["d_width"],
                )
            )
        with open(
            target / "manifest.csv", "w", newline="", encoding="utf-8"
        ) as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["relation", "attributes", "partition_values", "file", "d_width"]
            )
            writer.writerows(v1_rows)
        (target / "indexes.csv").unlink(missing_ok=True)

    def test_v2_directory_loads(self, vehicles_udb, tmp_path):
        from repro.sql import execute_sql

        execute_sql("insert into r values (9, 'Tank', 'Friend')", vehicles_udb)
        execute_sql("delete from r where id = 1", vehicles_udb)
        target = tmp_path / "v2"
        save_udatabase(vehicles_udb, target)
        self._downgrade_to_v2(target)
        back = load_udatabase(target)
        assert _poss_rows(back) == _poss_rows(vehicles_udb)
        for a, b in zip(
            sorted(vehicles_udb.partitions("r"), key=lambda p: p.value_names),
            sorted(back.partitions("r"), key=lambda p: p.value_names),
        ):
            assert a.relation.deleted_ordinals() == b.relation.deleted_ordinals()
        # the next save upgrades in place: sidecars swept, vector inline
        save_udatabase(back, target)
        assert not list(target.rglob("deleted.csv"))
        assert _poss_rows(load_udatabase(target)) == _poss_rows(vehicles_udb)

    def test_v1_directory_loads(self, vehicles_udb, tmp_path):
        target = tmp_path / "v1"
        save_udatabase(vehicles_udb, target)
        self._downgrade_to_v1(target)
        back = load_udatabase(target)
        assert _poss_rows(back) == _poss_rows(vehicles_udb)
        assert back.world_count() == vehicles_udb.world_count()
