"""Tests for UDatabase save/load."""

import pytest

from repro.core import Descriptor, UDatabase, URelation, WorldTable
from repro.core.persist import load_udatabase, save_udatabase
from repro.core.urelation import tid_column


def worldset(udb, name):
    return frozenset(frozenset(i[name].rows) for _, i in udb.worlds())


class TestRoundTrip:
    def test_vehicles_roundtrip(self, vehicles_udb, tmp_path):
        save_udatabase(vehicles_udb, tmp_path / "db")
        back = load_udatabase(tmp_path / "db")
        assert back.relation_names() == vehicles_udb.relation_names()
        assert back.world_count() == vehicles_udb.world_count()
        assert worldset(back, "r") == worldset(vehicles_udb, "r")

    def test_partition_structure_preserved(self, vehicles_udb, tmp_path):
        save_udatabase(vehicles_udb, tmp_path / "db")
        back = load_udatabase(tmp_path / "db")
        originals = vehicles_udb.partitions("r")
        restored = back.partitions("r")
        assert len(restored) == len(originals)
        for a, b in zip(sorted(originals, key=lambda p: p.value_names),
                        sorted(restored, key=lambda p: p.value_names)):
            assert a == b

    def test_files_mirror_paper_naming(self, vehicles_udb, tmp_path):
        save_udatabase(vehicles_udb, tmp_path / "db")
        names = {p.name for p in (tmp_path / "db").iterdir()}
        assert "u_r_id" in names
        assert "u_r_type" in names
        assert "w.csv" in names and "manifest.csv" in names
        # each partition directory holds its base segment file
        assert (tmp_path / "db" / "u_r_id" / "seg_000000.csv").exists()
        assert (tmp_path / "db" / "u_r_type" / "seg_000000.csv").exists()

    def test_probabilities_roundtrip(self, tmp_path):
        world = WorldTable({"x": [1, 2]}, probabilities={"x": [0.75, 0.25]})
        u = URelation.build(
            [(Descriptor(x=1), 1, ("a",)), (Descriptor(x=2), 1, ("b",))],
            tid_column("r"),
            ["v"],
        )
        udb = UDatabase(world)
        udb.add_relation("r", ["v"], [u])
        save_udatabase(udb, tmp_path / "p")
        back = load_udatabase(tmp_path / "p")
        assert back.world_table.probability("x", 1) == pytest.approx(0.75)

    def test_uniform_probabilities_stay_uniform(self, vehicles_udb, tmp_path):
        save_udatabase(vehicles_udb, tmp_path / "u")
        back = load_udatabase(tmp_path / "u")
        assert back.world_table.probability("x", 1) == pytest.approx(0.5)

    def test_queries_work_after_reload(self, vehicles_udb, tmp_path):
        from repro.core import Poss, Rel, UProject, USelect, execute_query
        from repro.relational import col, lit

        save_udatabase(vehicles_udb, tmp_path / "q")
        back = load_udatabase(tmp_path / "q")
        q = Poss(
            UProject(USelect(Rel("r"), col("faction").eq(lit("Enemy"))), ["id"])
        )
        assert set(execute_query(q, back).rows) == set(
            execute_query(q, vehicles_udb).rows
        )

    def test_generated_database_roundtrip(self, tmp_path):
        from repro.ugen import generate_uncertain

        bundle = generate_uncertain(
            scale=0.001, x=0.05, seed=8, tables=["nation", "region"]
        )
        save_udatabase(bundle.udb, tmp_path / "g")
        back = load_udatabase(tmp_path / "g")
        assert back.total_representation_rows() == bundle.udb.total_representation_rows()
        assert back.world_count() == bundle.udb.world_count()


class TestSegmentLog:
    """The log-structured contract: re-saving after DML appends, never
    rewrites."""

    def _snapshot(self, directory):
        return {
            path.relative_to(directory): (path.stat().st_mtime_ns, path.read_bytes())
            for path in directory.rglob("*")
            if path.is_file()
        }

    def test_save_after_inserts_rewrites_no_base_segment(
        self, vehicles_udb, tmp_path
    ):
        from repro.sql import execute_sql

        target = tmp_path / "db"
        save_udatabase(vehicles_udb, target)
        before = self._snapshot(target)
        for i in range(3):
            execute_sql(
                f"insert into r values ({100 + i}, 'Tank', 'Friend')", vehicles_udb
            )
        save_udatabase(vehicles_udb, target)
        after = self._snapshot(target)
        # every base segment file survives byte- and mtime-identical
        for path, (mtime, data) in before.items():
            if path.name.startswith("seg_"):
                assert after[path] == (mtime, data), path
        # each partition gained one appended segment file per statement
        for part in ("u_r_id", "u_r_type", "u_r_faction"):
            new = [
                p
                for p in after
                if p.parts[0] == part and p.name.startswith("seg_") and p not in before
            ]
            assert len(new) == 3, part

    def test_save_after_delete_touches_only_delete_vectors(
        self, vehicles_udb, tmp_path
    ):
        from repro.sql import execute_sql

        target = tmp_path / "db"
        save_udatabase(vehicles_udb, target)
        before = self._snapshot(target)
        execute_sql("delete from r where id = 1", vehicles_udb)
        save_udatabase(vehicles_udb, target)
        after = self._snapshot(target)
        for path, payload in before.items():
            if path.name.startswith("seg_"):
                assert after[path] == payload, path
        assert any(path.name == "deleted.csv" for path in after)

    def test_dml_roundtrip_preserves_answers_and_segments(
        self, vehicles_udb, tmp_path
    ):
        from repro.core import Poss, Rel, UProject, execute_query
        from repro.sql import execute_sql

        execute_sql("insert into r values (9, {'Tank', 'Jeep'}, 'Friend')", vehicles_udb)
        execute_sql("update r set faction = 'Enemy' where id = 9", vehicles_udb)
        execute_sql("delete from r where id = 1", vehicles_udb)
        save_udatabase(vehicles_udb, tmp_path / "db")
        back = load_udatabase(tmp_path / "db")
        # segment structure, delete vectors, and the minted variable survive
        for a, b in zip(
            sorted(vehicles_udb.partitions("r"), key=lambda p: p.value_names),
            sorted(back.partitions("r"), key=lambda p: p.value_names),
        ):
            assert [s.rows for s in a.relation.segments()] == [
                s.rows for s in b.relation.segments()
            ]
            assert a.relation.deleted_ordinals() == b.relation.deleted_ordinals()
        assert back.world_count() == vehicles_udb.world_count()
        query = Poss(UProject(Rel("r"), ["id", "type", "faction"]))
        assert set(execute_query(query, back).rows) == set(
            execute_query(query, vehicles_udb).rows
        )
