"""Tests for the algebraic (Prop. 3.3) reduction program."""

import pytest

from repro.core import Descriptor, UDatabase, URelation, WorldTable
from repro.core.reduction import (
    reduce_partitions,
    reduce_partitions_relational,
    reduction_plan,
)
from repro.core.urelation import tid_column
from repro.relational import explain_logical


@pytest.fixture
def example32_parts():
    u1 = URelation.build(
        [
            (Descriptor(c1=1), "t1", ("a1",)),
            (Descriptor(c2=1), "t2", ("a2",)),
        ],
        tid_column("r"),
        ["A"],
    )
    u2 = URelation.build(
        [
            (Descriptor(c1=1), "t1", ("b1",)),
            (Descriptor(c1=2), "t1", ("b2",)),
        ],
        tid_column("r"),
        ["B"],
    )
    return [u1, u2]


class TestRelationalReduction:
    def test_matches_python_reduction(self, example32_parts):
        relational = reduce_partitions_relational(example32_parts)
        pythonic = reduce_partitions(example32_parts, iterate=False)
        for a, b in zip(relational, pythonic):
            assert a == b

    def test_example32_reduced(self, example32_parts):
        reduced = reduce_partitions_relational(example32_parts)
        assert len(reduced[0]) == 1 and len(reduced[1]) == 1

    def test_vehicles_unchanged(self, vehicles_udb):
        parts = vehicles_udb.partitions("r")
        reduced = reduce_partitions_relational(parts)
        for before, after in zip(parts, reduced):
            assert before == after

    def test_single_partition_identity(self):
        u = URelation.build(
            [(Descriptor(), 1, ("a",))], tid_column("r"), ["A"]
        )
        (out,) = reduce_partitions_relational([u])
        assert out == u

    def test_plan_is_semijoin_cascade(self, example32_parts):
        plan = reduction_plan(example32_parts[0], example32_parts[1:])
        text = explain_logical(plan)
        assert "SemiJoin" in text
        assert "Seq Scan" in text

    def test_plan_uses_alpha_and_psi(self, example32_parts):
        plan = reduction_plan(example32_parts[0], example32_parts[1:])
        text = explain_logical(plan)
        assert "tid_r" in text           # alpha: shared tuple id
        assert "<>" in text and "OR" in text  # psi disjunction

    def test_plan_against_multiple_partitions(self, vehicles_udb):
        parts = vehicles_udb.partitions("r")
        plan = reduction_plan(parts[0], parts[1:])
        text = explain_logical(plan)
        assert text.count("SemiJoin") == 2


class TestSemiJoinOperator:
    def test_semijoin_basics(self):
        from repro.relational import Relation, Scan, SemiJoin, col
        from repro.relational.planner import run

        left = Scan(Relation(["a"], [(1,), (2,), (3,)]), "l")
        right = Scan(Relation(["b"], [(2,), (3,), (9,)]), "r")
        out = run(SemiJoin(left, right, col("a").eq(col("b"))), optimize_first=False)
        assert out.schema.names == ["a"]
        assert sorted(out.rows) == [(2,), (3,)]

    def test_semijoin_no_duplication(self):
        """A left row with several partners appears once (semijoin law)."""
        from repro.relational import Relation, Scan, SemiJoin, col
        from repro.relational.planner import run

        left = Scan(Relation(["a"], [(1,)]), "l")
        right = Scan(Relation(["b"], [(1,), (1,), (1,)]), "r")
        out = run(SemiJoin(left, right, col("a").eq(col("b"))), optimize_first=False)
        assert out.rows == [(1,)]

    def test_semijoin_empty_right(self):
        from repro.relational import Relation, Scan, SemiJoin, col
        from repro.relational.planner import run

        left = Scan(Relation(["a"], [(1,)]), "l")
        right = Scan(Relation(["b"], []), "r")
        out = run(SemiJoin(left, right, col("a").eq(col("b"))), optimize_first=False)
        assert len(out) == 0
