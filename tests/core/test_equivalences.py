"""Tests for the Figure 2 equivalences and the merge placement strategies.

Each rewrite rule is verified *semantically*: the rewritten query must give
the same possible answers as the original on the vehicles database.
"""

import pytest

from repro.core import (
    Poss,
    Rel,
    UJoin,
    UMerge,
    UProject,
    USelect,
    execute_query,
    translate_early,
    translate_late,
)
from repro.core.equivalences import (
    apply_merge_rules,
    rule2_commute,
    rule3_reassociate,
    rule4_selection_into_merge,
    rule6_projection_into_merge,
)
from repro.relational import col, lit
from repro.relational.planner import run as run_plan
from tests.conftest import brute_force_poss


def poss_set(query, udb):
    return set(execute_query(Poss(query), udb).rows)


@pytest.fixture
def merge_query():
    """sigma(merge(pi_type(R), pi_faction(R)))."""
    return USelect(
        UMerge(UProject(Rel("r"), ["type"]), UProject(Rel("r"), ["faction"])),
        col("faction").eq(lit("Enemy")),
    )


class TestRule1Identity:
    def test_merge_inverts_partitioning(self, vehicles_udb):
        """merge(pi_X(R), pi_{A-X}(R)) = R (rule 1)."""
        merged = UMerge(
            UProject(Rel("r"), ["id"]),
            UMerge(UProject(Rel("r"), ["type"]), UProject(Rel("r"), ["faction"])),
        )
        assert poss_set(merged, vehicles_udb) == poss_set(Rel("r"), vehicles_udb)


class TestRule2Commutativity:
    def test_rewrite_applies(self):
        m = UMerge(UProject(Rel("r"), ["id"]), UProject(Rel("r"), ["type"]))
        swapped = rule2_commute(m)
        assert swapped is not None
        assert swapped.left is m.right and swapped.right is m.left

    def test_not_applicable_elsewhere(self):
        assert rule2_commute(Rel("r")) is None

    def test_semantics_preserved(self, vehicles_udb):
        m = UMerge(UProject(Rel("r"), ["id"]), UProject(Rel("r"), ["type"]))
        swapped = rule2_commute(m)
        left = {tuple(sorted(map(repr, row))) for row in poss_set(m, vehicles_udb)}
        right = {tuple(sorted(map(repr, row))) for row in poss_set(swapped, vehicles_udb)}
        assert left == right  # same tuples modulo column order


class TestRule3Associativity:
    def test_rewrite_applies(self):
        m = UMerge(
            UMerge(UProject(Rel("r"), ["id"]), UProject(Rel("r"), ["type"])),
            UProject(Rel("r"), ["faction"]),
        )
        reassoc = rule3_reassociate(m)
        assert reassoc is not None
        assert isinstance(reassoc.right, UMerge)

    def test_semantics_preserved(self, vehicles_udb):
        m = UMerge(
            UMerge(UProject(Rel("r"), ["id"]), UProject(Rel("r"), ["type"])),
            UProject(Rel("r"), ["faction"]),
        )
        reassoc = rule3_reassociate(m)
        assert poss_set(m, vehicles_udb) == poss_set(reassoc, vehicles_udb)


class TestRule4SelectionIntoMerge:
    def test_rewrite_applies(self, merge_query):
        rewritten = rule4_selection_into_merge(merge_query)
        assert isinstance(rewritten, UMerge)
        assert isinstance(rewritten.right, USelect)

    def test_semantics_preserved(self, vehicles_udb, merge_query):
        rewritten = rule4_selection_into_merge(merge_query)
        assert poss_set(merge_query, vehicles_udb) == poss_set(rewritten, vehicles_udb)

    def test_not_applicable_when_predicate_spans(self, vehicles_udb):
        q = USelect(
            UMerge(UProject(Rel("r"), ["type"]), UProject(Rel("r"), ["faction"])),
            col("type").eq(col("faction")),
        )
        assert rule4_selection_into_merge(q) is None


class TestRule6ProjectionIntoMerge:
    def test_projection_splits(self, vehicles_udb):
        q = UProject(
            UMerge(
                UProject(Rel("r"), ["id", "type"]),
                UProject(Rel("r"), ["faction"]),
            ),
            ["id", "faction"],
        )
        rewritten = rule6_projection_into_merge(q)
        assert rewritten is not None
        assert poss_set(q, vehicles_udb) == poss_set(rewritten, vehicles_udb)


class TestApplyMergeRules:
    def test_normalizes_and_preserves(self, vehicles_udb, merge_query):
        rewritten = apply_merge_rules(merge_query)
        assert poss_set(merge_query, vehicles_udb) == poss_set(rewritten, vehicles_udb)

    def test_fixpoint_no_infinite_loop(self, merge_query):
        once = apply_merge_rules(merge_query)
        twice = apply_merge_rules(once)
        assert type(once) is type(twice)


class TestStrategies:
    def make_query(self):
        return UProject(
            USelect(
                Rel("r"),
                col("type").eq(lit("Tank")) & col("faction").eq(lit("Enemy")),
            ),
            ["id"],
        )

    def test_early_and_late_agree(self, vehicles_udb):
        q = self.make_query()
        late = translate_late(q, vehicles_udb)
        early = translate_early(q, vehicles_udb)
        late_rows = set(run_plan(late.plan).project(list(late.value_names)).rows)
        early_rows = set(run_plan(early.plan).project(list(early.value_names)).rows)
        assert late_rows == early_rows

    def test_late_reads_fewer_partitions_for_narrow_query(self, vehicles_udb):
        from repro.relational.algebra import Scan

        def count_scans(plan):
            n = 1 if isinstance(plan, Scan) else 0
            return n + sum(count_scans(c) for c in plan.children)

        narrow = UProject(Rel("r"), ["type"])
        late = translate_late(narrow, vehicles_udb)
        early = translate_early(narrow, vehicles_udb)
        assert count_scans(late.plan) < count_scans(early.plan)

    def test_strategies_match_oracle(self, vehicles_udb):
        q = self.make_query()
        expected = brute_force_poss(q, vehicles_udb)
        late = translate_late(q, vehicles_udb)
        rows = set(run_plan(late.plan).project(list(late.value_names)).distinct().rows)
        assert rows == expected


class TestRule5JoinIntoMerge:
    def test_rewrite_applies(self, vehicles_udb):
        from repro.core.equivalences import rule5_join_into_merge

        merged = UMerge(UProject(Rel("r"), ["id"]), UProject(Rel("r"), ["type"]))
        other = UProject(Rel("r", "q"), ["q.id"])
        q = UJoin(merged, other, col("id").eq(col("q.id")))
        rewritten = rule5_join_into_merge(q)
        assert isinstance(rewritten, UMerge)
        assert isinstance(rewritten.left, UJoin)

    def test_not_applicable_without_merge(self):
        from repro.core.equivalences import rule5_join_into_merge

        q = UJoin(Rel("r", "a"), Rel("r", "b"), col("a.id").eq(col("b.id")))
        assert rule5_join_into_merge(q) is None
