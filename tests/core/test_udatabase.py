"""Tests for UDatabase: semantics, validity, world enumeration."""

import pytest

from repro.core import Descriptor, UDatabase, URelation, WorldTable
from repro.core.urelation import tid_column
from repro.relational.relation import Relation


class TestConstruction:
    def test_vehicles_fixture(self, vehicles_udb):
        assert vehicles_udb.relation_names() == ["r"]
        assert vehicles_udb.world_count() == 8
        assert len(vehicles_udb.partitions("r")) == 3

    def test_partition_tid_name_enforced(self):
        udb = UDatabase(WorldTable())
        bad = URelation.build([(Descriptor(), 1, ("a",))], "tid_wrong", ["v"])
        with pytest.raises(ValueError, match="tid column"):
            udb.add_relation("r", ["v"], [bad])

    def test_coverage_enforced(self):
        udb = UDatabase(WorldTable())
        part = URelation.build([(Descriptor(), 1, ("a",))], tid_column("r"), ["v"])
        with pytest.raises(ValueError, match="cover"):
            udb.add_relation("r", ["v", "w"], [part])

    def test_unknown_attributes_rejected(self):
        udb = UDatabase(WorldTable())
        part = URelation.build([(Descriptor(), 1, ("a",))], tid_column("r"), ["v"])
        with pytest.raises(ValueError, match="unknown"):
            udb.add_relation("r", [], [part])

    def test_from_certain(self):
        udb = UDatabase.from_certain(
            {"r": Relation(["a", "b"], [(1, "x"), (2, "y")])}
        )
        assert udb.world_count() == 1
        _, instances = next(udb.worlds())
        assert sorted(instances["r"].rows) == [(1, "x"), (2, "y")]

    def test_unknown_relation_raises(self, vehicles_udb):
        with pytest.raises(KeyError):
            vehicles_udb.partitions("nope")

    def test_to_database_names(self, vehicles_udb):
        db = vehicles_udb.to_database()
        assert "u_r_id" in db and "u_r_type" in db and "w" in db

    def test_total_representation_rows(self, vehicles_udb):
        # 6 + 5 + 5 partition rows + 7 world-table rows (3 vars x 2 + trivial)
        assert vehicles_udb.total_representation_rows() == 23


class TestSemantics:
    def test_instantiate_one_world(self, vehicles_udb):
        world = vehicles_udb.instantiate(
            {"x": 1, "y": 1, "z": 1, "_t": 0}, "r"
        )
        assert set(world.rows) == {
            (1, "Tank", "Friend"),
            (2, "Transport", "Friend"),
            (3, "Tank", "Enemy"),
            (4, "Tank", "Friend"),
        }

    def test_eight_distinct_worlds(self, vehicles_udb):
        worlds = {frozenset(inst["r"].rows) for _, inst in vehicles_udb.worlds()}
        assert len(worlds) == 8

    def test_partial_tuples_dropped(self):
        w = WorldTable({"x": [1, 2]})
        # tuple t2 only gets attribute A when x=1; B is never defined for it
        u_a = URelation.build(
            [(Descriptor(), "t1", ("a1",)), (Descriptor(x=1), "t2", ("a2",))],
            tid_column("r"),
            ["A"],
        )
        u_b = URelation.build(
            [(Descriptor(), "t1", ("b1",))], tid_column("r"), ["B"]
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["A", "B"], [u_a, u_b])
        for _val, inst in udb.worlds():
            assert inst["r"].rows == [("a1", "b1")]

    def test_world_relations_helper(self, vehicles_udb):
        instances = vehicles_udb.world_relations({"x": 2, "y": 2, "z": 2, "_t": 0})
        assert (3, "Transport", "Friend") in instances["r"].rows


class TestValidity:
    def test_vehicles_valid(self, vehicles_udb):
        assert vehicles_udb.is_valid()

    def test_example_2_3_invalid(self):
        """The paper's Example 2.3: contradictory values for a shared field."""
        w = WorldTable({"c1": [1, 2], "c2": [1, 2]})
        u1 = URelation.build(
            [(Descriptor(c1=1), "t1", ("a", "b"))], tid_column("r"), ["A", "B"]
        )
        u2 = URelation.build(
            [(Descriptor(c2=2), "t1", ("b'", "c"))], tid_column("r"), ["B", "C"]
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["A", "B", "C"], [u1, u2])
        assert not udb.is_valid()

    def test_overlap_with_agreement_valid(self):
        w = WorldTable({"c1": [1, 2]})
        u1 = URelation.build(
            [(Descriptor(c1=1), "t1", ("a", "b"))], tid_column("r"), ["A", "B"]
        )
        u2 = URelation.build(
            [(Descriptor(c1=1), "t1", ("b", "c"))], tid_column("r"), ["B", "C"]
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["A", "B", "C"], [u1, u2])
        assert udb.is_valid()

    def test_inconsistent_descriptors_never_conflict(self):
        w = WorldTable({"c1": [1, 2]})
        u1 = URelation.build(
            [(Descriptor(c1=1), "t1", ("b",))], tid_column("r"), ["B"]
        )
        u2 = URelation.build(
            [(Descriptor(c1=2), "t1", ("b'",))], tid_column("r"), ["B"]
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["B"], [u1, u2])
        assert udb.is_valid()  # never in the same world

    def test_instantiate_detects_conflicts(self):
        w = WorldTable({"c1": [1, 2], "c2": [1, 2]})
        u1 = URelation.build(
            [(Descriptor(c1=1), "t1", ("a", "b"))], tid_column("r"), ["A", "B"]
        )
        u2 = URelation.build(
            [(Descriptor(c2=2), "t1", ("b'", "c"))], tid_column("r"), ["B", "C"]
        )
        udb = UDatabase(w)
        udb.add_relation("r", ["A", "B", "C"], [u1, u2])
        with pytest.raises(ValueError, match="invalid"):
            udb.instantiate({"c1": 1, "c2": 2, "_t": 0}, "r")
