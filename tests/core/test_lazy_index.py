"""Tests for lazy auto-indexing and world-table index persistence."""

from __future__ import annotations

from repro.core import UDatabase, execute_query
from repro.core.persist import load_udatabase, save_udatabase
from repro.core.query import Poss, Rel, UProject, USelect
from repro.relational import Relation
from repro.relational.expressions import col, lit
from repro.relational.index import attached_index_defs, defer_index, indexes_on


def certain_udb() -> UDatabase:
    return UDatabase.from_certain(
        {"r": Relation(["a", "b"], [(i, i * 2) for i in range(20)])}
    )


class TestLazyAutoIndexing:
    def test_add_relation_defers_builds(self):
        udb = certain_udb()
        relation = udb.partitions("r")[0].relation
        assert not getattr(relation, "_indexes", None)
        assert len(attached_index_defs(relation)) == 3  # tid hash + 2 sorted

    def test_planner_access_materializes(self):
        udb = certain_udb()
        relation = udb.partitions("r")[0].relation
        built = indexes_on(relation)
        assert {i.kind for i in built} == {"hash", "sorted"}
        assert len(built) == 3
        assert not getattr(relation, "_pending_indexes")

    def test_build_now_escape_hatch(self):
        from repro.core.urelation import URelation, tid_column

        udb = UDatabase()
        part = URelation.from_certain_rows([(1, 2)], tid_column("r"), ["a", "b"])
        udb.add_relation("r", ["a", "b"], [part], build_now=True)
        assert len(getattr(part.relation, "_indexes")) == 3

    def test_queries_still_use_indexes(self):
        udb = certain_udb()
        answer = execute_query(
            Poss(UProject(USelect(Rel("r"), col("a").eq(lit(3))), ["b"])), udb
        )
        assert answer.rows == [(6,)]
        relation = udb.partitions("r")[0].relation
        assert len(getattr(relation, "_indexes")) == 3  # built by the planner

    def test_unsortable_deferred_definition_is_skipped(self):
        relation = Relation(["a"], [(1,), ({"un": "hashable-sort"},)])
        defer_index(relation, ["a"], kind="sorted")
        assert indexes_on(relation) == ()  # skipped silently, like eager

    def test_defer_is_idempotent(self):
        relation = Relation(["a"], [(1,)])
        defer_index(relation, ["a"], kind="hash", name="idx_x")
        defer_index(relation, ["a"], kind="hash", name="idx_x")
        assert len(getattr(relation, "_pending_indexes")) == 1
        assert len(indexes_on(relation)) == 1
        defer_index(relation, ["a"], kind="hash", name="idx_x")  # already built
        assert indexes_on(relation)[0].name == "idx_x"


class TestPersistenceWithLazyIndexes:
    def test_save_does_not_force_builds(self, tmp_path):
        udb = certain_udb()
        save_udatabase(udb, tmp_path)
        relation = udb.partitions("r")[0].relation
        assert not getattr(relation, "_indexes", None)
        text = (tmp_path / "indexes.csv").read_text()
        assert "idx_u_r_a_b_tid" in text  # pending definitions recorded

    def test_load_defers_and_round_trips_definitions(self, tmp_path):
        udb = certain_udb()
        save_udatabase(udb, tmp_path)
        loaded = load_udatabase(tmp_path)
        relation = loaded.partitions("r")[0].relation
        assert not getattr(relation, "_indexes", None)
        built = indexes_on(relation)
        assert sorted(i.name for i in built) == [
            "idx_u_r_a_b_a",
            "idx_u_r_a_b_b",
            "idx_u_r_a_b_tid",
        ]

    def test_user_index_survives_round_trip(self, tmp_path):
        udb = certain_udb()
        db = udb.to_database()
        db.create_index("idx_custom", "u_r_a_b", ["b"], kind="hash")
        save_udatabase(udb, tmp_path)
        loaded = load_udatabase(tmp_path)
        relation = loaded.partitions("r")[0].relation
        assert "idx_custom" in {i.name for i in indexes_on(relation)}


class TestWorldIndexPersistence:
    def test_world_index_round_trips(self, tmp_path):
        udb = certain_udb()
        udb.world_table.add_variable("x", [1, 2])
        db = udb.to_database()
        db.create_index("idx_w_rng", "w", ["rng"], kind="hash")
        save_udatabase(udb, tmp_path)
        text = (tmp_path / "indexes.csv").read_text()
        assert "w.csv,idx_w_rng" in text
        loaded = load_udatabase(tmp_path)
        assert ("idx_w_rng", ("rng",), "hash") in loaded.world_index_defs
        ldb = loaded.to_database()
        assert "idx_w_rng" in ldb.index_names("w")

    def test_world_index_survives_world_growth(self, tmp_path):
        udb = certain_udb()
        udb.world_table.add_variable("x", [1, 2])
        save_udatabase(udb, tmp_path)
        loaded = load_udatabase(tmp_path)
        db = loaded.to_database()
        db.create_index("idx_w_live", "w", ["var"], kind="hash")
        loaded.world_table.add_variable("y", [1, 2, 3])  # forces a w refresh
        db = loaded.to_database()
        assert "idx_w_live" in db.index_names("w")

    def test_pre_index_directories_still_load(self, tmp_path):
        udb = certain_udb()
        save_udatabase(udb, tmp_path)
        (tmp_path / "indexes.csv").unlink()
        loaded = load_udatabase(tmp_path)
        assert loaded.relation_names() == ["r"]


class TestLazyIndexRobustness:
    def test_stale_definition_does_not_lose_the_rest(self):
        relation = Relation(["a"], [(1,), (2,)])
        defer_index(relation, ["missing_column"], kind="hash", name="idx_bad")
        defer_index(relation, ["a"], kind="hash", name="idx_good")
        built = indexes_on(relation)  # bad definition skipped, good built
        assert [i.name for i in built] == ["idx_good"]

    def test_build_indexes_forces_all_deferred_builds(self):
        udb = certain_udb()
        relation = udb.partitions("r")[0].relation
        assert not getattr(relation, "_indexes", None)
        udb.build_indexes()
        assert len(getattr(relation, "_indexes")) == 3

    def test_merge_join_peek_does_not_trigger_builds(self):
        from repro.relational.physical import MergeJoin, SeqScan, execute

        udb = certain_udb()
        relation = udb.partitions("r")[0].relation
        join = MergeJoin(
            SeqScan(relation, "u", alias="u"),
            SeqScan(relation, "v", alias="v"),
            [("u.tid_r", "v.tid_r")],
        )
        execute(join, mode="columns")
        # the execution-time presorted peek must not force the deferred
        # auto-index builds (write-only pipelines rely on that laziness)
        assert not getattr(relation, "_indexes", None)
