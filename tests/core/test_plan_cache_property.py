"""Property tests: cached execute_query == fresh execution, all knobs.

Mirrors ``tests/relational/test_columnar.py``'s mode-agreement properties
one level up: for randomized logical queries over the vehicles database,
executing through the (warm) prepared-plan cache must be tuple-identical
to a fresh, cache-free translation across all three executor modes, batch
sizes {0, 1, 1023, 1024, 1025}, ``use_indexes`` on/off, and fused (columns
mode) vs unfused (blocks/rows) plans.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import Poss, Rel, UJoin, UProject, UQuery, USelect
from repro.core.translate import execute_query
from repro.relational import col, lit, plan_cache_stats, reset_plan_cache

from tests.conftest import build_vehicles_udb

batch_sizes = st.sampled_from([0, 1, 1023, 1024, 1025])
modes = st.sampled_from(["rows", "blocks", "columns"])


@st.composite
def predicates(draw):
    kind = draw(st.sampled_from(["type", "faction", "id_lt", "id_between", "and"]))
    if kind == "type":
        return col("type").eq(lit(draw(st.sampled_from(["Tank", "Transport", "None"]))))
    if kind == "faction":
        return col("faction").eq(lit(draw(st.sampled_from(["Friend", "Enemy"]))))
    if kind == "id_lt":
        return col("id") < lit(draw(st.integers(min_value=0, max_value=5)))
    if kind == "id_between":
        lo = draw(st.integers(min_value=0, max_value=4))
        hi = draw(st.integers(min_value=0, max_value=5))
        return col("id").between(min(lo, hi), max(lo, hi))
    return (col("type").eq(lit("Tank"))) & (
        col("id") < lit(draw(st.integers(min_value=1, max_value=5)))
    )


@st.composite
def queries(draw) -> UQuery:
    shape = draw(st.sampled_from(["select", "project", "join", "merge_heavy"]))
    if shape == "select":
        return Poss(USelect(Rel("r"), draw(predicates())))
    if shape == "project":
        attrs = draw(
            st.sampled_from([["id"], ["type", "id"], ["faction"], ["id", "faction"]])
        )
        return Poss(UProject(USelect(Rel("r"), draw(predicates())), attrs))
    if shape == "join":
        join = UJoin(
            USelect(Rel("r", "a"), col("a.type").eq(lit("Tank"))),
            Rel("r", "b"),
            col("a.id").eq(col("b.id")),
        )
        return Poss(UProject(join, ["a.id", "b.faction"]))
    # touches all three partitions: forces two tid merges
    return Poss(
        UProject(USelect(Rel("r"), draw(predicates())), ["id", "type", "faction"])
    )


@given(queries(), batch_sizes, modes, st.booleans())
@settings(max_examples=100, deadline=None)
def test_cached_query_identical_to_fresh(query, batch_size, mode, use_indexes):
    udb = build_vehicles_udb()
    reset_plan_cache()
    cold = execute_query(
        query, udb, mode=mode, use_indexes=use_indexes, batch_size=batch_size
    )
    misses = plan_cache_stats()["misses"]
    warm = execute_query(
        query, udb, mode=mode, use_indexes=use_indexes, batch_size=batch_size
    )
    warm_again = execute_query(
        query, udb, mode=mode, use_indexes=use_indexes, batch_size=batch_size
    )
    # the repeated runs were executor-only...
    assert plan_cache_stats()["misses"] == misses
    assert plan_cache_stats()["hits"] >= 2
    # ...and tuple-identical to the cold run
    assert warm == cold
    assert warm_again == cold
    assert sorted(map(repr, warm.rows)) == sorted(map(repr, cold.rows))


@given(queries(), batch_sizes)
@settings(max_examples=40, deadline=None)
def test_warm_modes_agree_with_each_other(query, batch_size):
    """Fused (columns) and unfused (blocks/rows) cached plans agree."""
    udb = build_vehicles_udb()
    results = {
        mode: execute_query(query, udb, mode=mode, batch_size=batch_size)
        for mode in ("rows", "blocks", "columns")
    }
    # warm pass: every mode now runs from its cached plan
    for mode, cold in results.items():
        warm = execute_query(query, udb, mode=mode, batch_size=batch_size)
        assert warm == cold
    assert results["rows"] == results["blocks"] == results["columns"]
