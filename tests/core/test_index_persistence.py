"""Auto-indexing policy and index persistence.

* ``UDatabase`` auto-creates a hash index on every partition's tuple-id
  column plus sorted indexes on the value columns (and a Var index on the
  world table through ``to_database``).
* ``save_udatabase`` records index definitions in ``indexes.csv``;
  ``load_udatabase`` rebuilds them (and tolerates directories written
  before the index subsystem existed).
* Indexed and index-free execution agree on translated queries.
"""

from __future__ import annotations

import pytest

from repro.core.descriptor import Descriptor
from repro.core.persist import load_udatabase, save_udatabase
from repro.core.udatabase import UDatabase
from repro.core.urelation import URelation, tid_column
from repro.core.worldtable import WorldTable
from repro.relational.index import ensure_index, indexes_on
from repro.sql import execute_sql


def small_udb() -> UDatabase:
    world = WorldTable()
    world.add_variable("x", [1, 2])
    udb = UDatabase(world)
    id_part = URelation.build(
        [(Descriptor(), t, (t * 10,)) for t in (1, 2, 3)],
        tid_column("r"),
        ["id"],
    )
    kind_part = URelation.build(
        [
            (Descriptor({"x": 1}), 1, ("a",)),
            (Descriptor({"x": 2}), 1, ("b",)),
            (Descriptor(), 2, ("a",)),
            (Descriptor(), 3, ("b",)),
        ],
        tid_column("r"),
        ["kind"],
    )
    udb.add_relation("r", ["id", "kind"], [id_part, kind_part])
    return udb


class TestAutoIndexing:
    def test_partitions_get_tid_and_value_indexes(self):
        udb = small_udb()
        for part in udb.partitions("r"):
            kinds = {(i.kind, i.columns) for i in indexes_on(part.relation)}
            assert ("hash", (tid_column("r"),)) in kinds
            value_kinds = {c for k, cols in kinds if k == "sorted" for c in cols}
            assert set(part.value_names) <= value_kinds

    def test_auto_index_disabled(self):
        world = WorldTable()
        udb = UDatabase(world, auto_index=False)
        part = URelation.build(
            [(Descriptor(), 1, (1,))], tid_column("r"), ["id"]
        )
        udb.add_relation("r", ["id"], [part])
        assert indexes_on(part.relation) == ()

    def test_to_database_registers_indexes_and_w(self):
        udb = small_udb()
        db = udb.to_database()
        assert "idx_u_r_id_tid" in db.indexes
        assert "idx_u_r_kind_tid" in db.indexes
        assert "idx_w_var" in db.indexes
        assert db.indexes.table_of("idx_w_var") == "w"

    def test_w_snapshot_refreshed_only_on_world_change(self):
        udb = small_udb()
        db = udb.to_database()
        w_before = db.get("w")
        assert udb.to_database().get("w") is w_before  # cached: no mutation
        udb.world_table.add_variable("y", [1, 2, 3])
        w_after = udb.to_database().get("w")
        assert w_after is not w_before
        assert ("y", 2) in w_after.rows

    def test_to_database_cached_and_invalidated(self):
        udb = small_udb()
        db1 = udb.to_database()
        assert udb.to_database() is db1
        extra = URelation.build(
            [(Descriptor(), 1, (5,))], tid_column("s"), ["n"]
        )
        udb.add_relation("s", ["n"], [extra])
        db2 = udb.to_database()
        assert db2 is not db1
        assert "u_s_n" in db2


class TestPersistence:
    def test_round_trip_rebuilds_indexes(self, tmp_path):
        udb = small_udb()
        # a user-created index beyond the auto policy
        part = udb.partitions("r")[0]
        ensure_index(part.relation, ["id"], kind="hash", name="idx_custom_id_hash")
        save_udatabase(udb, tmp_path)
        assert (tmp_path / "indexes.csv").exists()

        loaded = load_udatabase(tmp_path)
        for part in loaded.partitions("r"):
            kinds = {(i.kind, i.columns) for i in indexes_on(part.relation)}
            assert ("hash", (tid_column("r"),)) in kinds
        id_part = next(
            p for p in loaded.partitions("r") if p.value_names == ("id",)
        )
        assert ("hash", ("id",)) in {
            (i.kind, i.columns) for i in indexes_on(id_part.relation)
        }

    def test_load_without_indexes_csv(self, tmp_path):
        udb = small_udb()
        save_udatabase(udb, tmp_path)
        (tmp_path / "indexes.csv").unlink()
        loaded = load_udatabase(tmp_path)  # pre-index directories still load
        # auto policy still applies on load
        for part in loaded.partitions("r"):
            assert indexes_on(part.relation)

    def test_round_trip_preserves_data_and_answers(self, tmp_path):
        udb = small_udb()
        save_udatabase(udb, tmp_path)
        loaded = load_udatabase(tmp_path)
        query = "possible (select id, kind from r where kind = 'a')"
        assert execute_sql(query, loaded) == execute_sql(query, udb)


class TestIndexedExecutionAgrees:
    @pytest.mark.parametrize("mode", ["rows", "blocks"])
    def test_translated_query_same_answers(self, mode):
        from repro.core import execute_query
        from repro.sql import parse

        udb = small_udb()
        query = parse("possible (select id from r where kind = 'a')")
        with_idx = execute_query(udb=udb, query=query, mode=mode, use_indexes=True)
        without = execute_query(udb=udb, query=query, mode=mode, use_indexes=False)
        assert with_idx == without

    def test_tpch_smoke_same_answers(self):
        from repro.core import execute_query
        from repro.tpch import q1, q2, q3
        from repro.ugen import generate_uncertain

        bundle = generate_uncertain(scale=0.0005, x=0.01, z=0.25, seed=7)
        for builder in (q1, q2, q3):
            query = builder()
            assert execute_query(query, bundle.udb, use_indexes=True) == execute_query(
                query, bundle.udb, use_indexes=False
            )
