"""Exact catalog-bump accounting for the batched write path.

The regression these tests pin down: a 100-row batched ``INSERT`` (or a
committed multi-statement transaction, or a ``copy_rows`` bulk load) must
reach the plan cache as *exactly one* :func:`bump_relation` per touched
partition relation — not one per row, not one per statement.  Anything
more evicts cached plans a hundred times over; anything fewer leaves a
stale plan alive.  The bump count is observed directly (by wrapping the
``bump_relation`` the publish path imports), and cross-checked against
the two externally visible ledgers it drives: ``catalog_version`` deltas
and ``plan_cache_stats()["invalidations"]``.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.core import execute_query
from repro.core.descriptor import Descriptor
from repro.core.query import Poss, Rel, UProject
from repro.core.udatabase import UDatabase
from repro.core.urelation import URelation, tid_column
from repro.relational import plan_cache_stats
from repro.server.session import Session
from repro.sql import execute_sql

import repro.core.udatabase as udatabase_module


@contextmanager
def counting_bumps(monkeypatch):
    """Wrap the ``bump_relation`` the publish path calls; yield the log.

    Every publish (``replace_partitions`` from DML, transaction commit,
    or compaction) goes through :mod:`repro.core.udatabase`'s module-level
    import, so wrapping that one name sees every catalog bump.
    """
    calls = []
    real = udatabase_module.bump_relation

    def counted(relation):
        calls.append(relation)
        return real(relation)

    monkeypatch.setattr(udatabase_module, "bump_relation", counted)
    try:
        yield calls
    finally:
        monkeypatch.setattr(udatabase_module, "bump_relation", real)


def _two_partition_udb() -> UDatabase:
    """``r`` split vertically into an ``id`` and a ``type`` partition,
    plus an unrelated single-partition ``s`` whose plans must survive."""
    udb = UDatabase(auto_index=False)
    initial = [(Descriptor(), i, (i,)) for i in range(3)]
    udb.add_relation(
        "r",
        ["id", "type"],
        [
            URelation.build(initial, tid_column("r"), ["id"]),
            URelation.build(
                [(Descriptor(), i, (f"t{i}",)) for i in range(3)],
                tid_column("r"),
                ["type"],
            ),
        ],
    )
    udb.add_relation(
        "s",
        ["k"],
        [URelation.build([(Descriptor(), 0, (0,))], tid_column("s"), ["k"])],
    )
    return udb


def q_r():
    return Poss(UProject(Rel("r"), ["id", "type"]))


def q_s():
    return Poss(UProject(Rel("s"), ["k"]))


def _warm(udb, query):
    """Run twice; the second run must be planning-free (a cache hit)."""
    answer = execute_query(query, udb)
    misses = plan_cache_stats()["misses"]
    assert execute_query(query, udb) == answer
    assert plan_cache_stats()["misses"] == misses, "second run re-planned"
    return answer


def _rows(udb):
    return set(map(tuple, execute_sql("possible (select id, type from r)", udb).rows))


def test_batched_insert_bumps_once_per_partition(monkeypatch):
    udb = _two_partition_udb()
    _warm(udb, q_r())
    survivor = _warm(udb, q_s())
    before = udb.catalog_version
    invalidations = plan_cache_stats()["invalidations"]

    values = ", ".join(f"({100 + i}, 'bulk')" for i in range(100))
    with counting_bumps(monkeypatch) as calls:
        result = execute_sql(f"insert into r values {values}", udb)

    assert result.count == 100
    # one bump per touched partition relation — NOT one per row
    assert len(calls) == 2
    assert len({id(rel) for rel in calls}) == 2
    # each bump moves the catalog version once (certain rows: no
    # world-table bumps), and the one dependent entry is evicted once
    assert udb.catalog_version - before == 2
    assert plan_cache_stats()["invalidations"] - invalidations == 1
    # the unrelated relation's plan is untouched: still a hit
    hits = plan_cache_stats()["hits"]
    assert execute_query(q_s(), udb) == survivor
    assert plan_cache_stats()["hits"] == hits + 1
    assert len(_rows(udb)) == 103


def test_copy_rows_bumps_once_per_partition(monkeypatch):
    udb = _two_partition_udb()
    _warm(udb, q_r())
    before = udb.catalog_version
    segments = {
        i: len(part.relation.segments()) for i, part in enumerate(udb.partitions("r"))
    }

    with counting_bumps(monkeypatch) as calls:
        result = udb.copy_rows("r", [(200 + i, "copy") for i in range(100)])

    assert result.count == 100
    assert len(calls) == 2
    assert udb.catalog_version - before == 2
    # the whole batch lands as ONE appended segment per partition
    for i, part in enumerate(udb.partitions("r")):
        assert len(part.relation.segments()) == segments[i] + 1
    assert len(_rows(udb)) == 103


def test_committed_txn_bumps_once_per_partition_at_commit(monkeypatch):
    udb = _two_partition_udb()
    _warm(udb, q_r())
    session = Session(udb)
    before = udb.catalog_version
    invalidations = plan_cache_stats()["invalidations"]

    with counting_bumps(monkeypatch) as calls:
        session.execute("begin")
        for i in range(50):
            session.execute(f"insert into r values ({300 + i}, 'txn')")
        session.execute("update r set type = 'staged' where id = 300")
        # nothing published yet: zero bumps, zero catalog movement
        assert calls == []
        assert udb.catalog_version == before
        session.execute("commit")

    # 51 statements, one publish: exactly one bump per touched partition
    assert len(calls) == 2
    assert udb.catalog_version - before == 2
    assert plan_cache_stats()["invalidations"] - invalidations == 1
    rows = _rows(udb)
    assert len(rows) == 53
    assert (300, "staged") in rows


def test_rolled_back_txn_bumps_nothing(monkeypatch):
    udb = _two_partition_udb()
    baseline = _warm(udb, q_r())
    session = Session(udb)
    before = udb.catalog_version

    with counting_bumps(monkeypatch) as calls:
        session.execute("begin")
        for i in range(20):
            session.execute(f"insert into r values ({400 + i}, 'doomed')")
        session.execute("rollback")

    assert calls == []
    assert udb.catalog_version == before
    # the cached plan is still warm and still right
    hits = plan_cache_stats()["hits"]
    assert execute_query(q_r(), udb) == baseline
    assert plan_cache_stats()["hits"] == hits + 1
