"""Property: a DML'd database answers exactly like a rebuilt one.

A random sequence of INSERT / UPDATE / DELETE statements leaves the
relation as a stack of immutable segments plus delete vectors.  The
invariant the whole write path rests on: querying that segmented,
delete-marked representation is indistinguishable — in every execution
mode, with and without access paths — from a database rebuilt from
scratch holding only the surviving logical tuples.

The relation is vertically partitioned (``id`` | ``type``) so every
statement exercises the multi-partition write path, and a Python-list
model supplies the ground truth independently of either engine path.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import execute_query
from repro.core.descriptor import Descriptor
from repro.core.query import Poss, Rel, UProject
from repro.core.udatabase import UDatabase
from repro.core.urelation import URelation, tid_column
from repro.sql import execute_sql

MODES = ["rows", "blocks", "columns"]

ids = st.integers(min_value=0, max_value=6)
types = st.sampled_from(["a", "b", "c"])
rows = st.lists(st.tuples(ids, types), min_size=0, max_size=4)

inserts = st.tuples(st.just("insert"), rows.filter(len))
updates = st.tuples(
    st.just("update"), types, st.sampled_from(["=", ">", "<="]), ids
)
deletes = st.tuples(st.just("delete"), st.sampled_from(["=", ">", "<="]), ids)

scripts = st.tuples(
    rows,  # initial contents
    st.lists(st.one_of(inserts, updates, deletes), min_size=1, max_size=6),
)


def _build(initial):
    udb = UDatabase(auto_index=False)
    tid = tid_column("r")
    p_id = URelation.build(
        [(Descriptor(), i, (r[0],)) for i, r in enumerate(initial)], tid, ["id"]
    )
    p_type = URelation.build(
        [(Descriptor(), i, (r[1],)) for i, r in enumerate(initial)], tid, ["type"]
    )
    udb.add_relation("r", ["id", "type"], [p_id, p_type])
    return udb


def _matches(row, op, k):
    return {"=": row[0] == k, ">": row[0] > k, "<=": row[0] <= k}[op]


def _apply(udb, model, op):
    """Run one statement against the engine and the list model alike."""
    if op[0] == "insert":
        values = ", ".join(f"({i}, '{t}')" for i, t in op[1])
        result = execute_sql(f"insert into r values {values}", udb)
        model.extend(op[1])
        assert result.count == len(op[1])
    elif op[0] == "update":
        _, value, cmp, k = op
        result = execute_sql(f"update r set type = '{value}' where id {cmp} {k}", udb)
        hits = [i for i, row in enumerate(model) if _matches(row, cmp, k)]
        for i in hits:
            model[i] = (model[i][0], value)
        assert result.count == len(hits)
    else:
        _, cmp, k = op
        result = execute_sql(f"delete from r where id {cmp} {k}", udb)
        survivors = [row for row in model if not _matches(row, cmp, k)]
        assert result.count == len(model) - len(survivors)
        model[:] = survivors


@settings(max_examples=40, deadline=None)
@given(scripts)
def test_dml_equals_rebuilt_across_modes_and_access_paths(script):
    initial, ops = script
    udb = _build(initial)
    model = list(initial)
    for op in ops:
        _apply(udb, model, op)
    rebuilt = _build(model)
    expected = set(model)  # Poss answers are distinct row sets
    query = Poss(UProject(Rel("r"), ["id", "type"]))
    for mode in MODES:
        for use_indexes in (True, False):
            for db in (udb, rebuilt):
                answer = set(
                    map(
                        tuple,
                        execute_query(
                            query, db, mode=mode, use_indexes=use_indexes
                        ).rows,
                    )
                )
                assert answer == expected, (mode, use_indexes, db is udb)


@settings(max_examples=40, deadline=None)
@given(scripts)
def test_dml_leaves_consistent_segment_accounting(script):
    """Structural half of the invariant: per partition, materialized rows
    are exactly the live ordinals of the concatenated segments, and both
    partitions agree on the surviving tuple ids."""
    initial, ops = script
    udb = _build(initial)
    model = list(initial)
    for op in ops:
        _apply(udb, model, op)
    surviving = None
    for part in udb.partitions("r"):
        relation = part.relation
        flat = [row for segment in relation.segments() for row in segment.rows]
        deleted = relation.deleted_ordinals()
        live = [row for i, row in enumerate(flat) if i not in deleted]
        assert list(relation.rows) == live
        tid_position = relation.schema.resolve(tid_column("r"))
        tids = sorted(row[tid_position] for row in relation.rows)
        if surviving is None:
            surviving = tids
        else:
            assert tids == surviving
    assert surviving is not None and len(surviving) == len(model)
