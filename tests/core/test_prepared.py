"""Tests for prepare()/PreparedQuery and $n parameter slots."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PreparedQuery, Poss, Rel, UProject, USelect, execute_query
from repro.core.prepared import collect_params
from repro.relational import (
    Param,
    col,
    compile_cache_stats,
    lit,
    plan_cache_stats,
)
from repro.sql import SqlSyntaxError, execute_sql, parse, prepare

from tests.conftest import build_vehicles_udb


class TestParamExpression:
    def test_parse_builds_shared_store(self):
        query = parse("possible (select id from r where type = $1 and id < $2)")
        store, count = collect_params(query)
        assert count == 2
        store[:] = ["Tank", 3]
        assert store == ["Tank", 3]

    def test_dollar_zero_rejected(self):
        for slot in ("$0", "$00", "$000"):
            with pytest.raises(SqlSyntaxError):
                parse(f"possible (select id from r where type = {slot})")

    def test_statement_cache_is_bounded(self, vehicles_udb):
        from repro.sql import _STATEMENT_CACHE_LIMIT

        for i in range(_STATEMENT_CACHE_LIMIT + 5):
            execute_sql(f"possible (select id from r where id = {i})", vehicles_udb)
        assert len(vehicles_udb._statements) <= _STATEMENT_CACHE_LIMIT

    def test_param_repr_and_value(self):
        store = []
        p = Param(1, store)
        assert repr(p) == "$2"
        assert store == [None, None]  # padded to the slot
        store[1] = 7
        assert p.value == 7

    def test_mixed_stores_rejected(self):
        q1 = parse("possible (select id from r where type = $1)")
        q2 = parse("possible (select id from r where type = $1)")
        mixed = USelect(q1.child, col("id").eq(Param(0, [None])))
        with pytest.raises(ValueError):
            collect_params(Poss(mixed))


class TestPreparedQuery:
    def test_run_binds_and_answers(self, vehicles_udb):
        stmt = prepare("possible (select id from r where type = $1)", vehicles_udb)
        tanks = stmt.run("Tank")
        transports = stmt.run("Transport")
        # match the unparameterized statements
        assert tanks == execute_sql(
            "possible (select id from r where type = 'Tank')", vehicles_udb
        )
        assert transports == execute_sql(
            "possible (select id from r where type = 'Transport')", vehicles_udb
        )

    def test_one_plan_serves_every_binding(self, vehicles_udb):
        stmt = prepare("possible (select id from r where type = $1)", vehicles_udb)
        stmt.run("Tank")
        misses = plan_cache_stats()["misses"]
        codegen = compile_cache_stats()["misses"]
        for value in ("Transport", "Tank", "NoSuchType", None):
            stmt.run(value)
        assert plan_cache_stats()["misses"] == misses  # zero re-planning
        assert compile_cache_stats()["misses"] == codegen  # zero codegen

    def test_null_binding_matches_nothing(self, vehicles_udb):
        stmt = prepare("possible (select id from r where type = $1)", vehicles_udb)
        stmt.run("Tank")
        assert len(stmt.run(None)) == 0  # NULL never compares equal

    def test_wrong_arity_raises(self, vehicles_udb):
        stmt = prepare("possible (select id from r where type = $1)", vehicles_udb)
        with pytest.raises(ValueError):
            stmt.run()
        with pytest.raises(ValueError):
            stmt.run("Tank", "Extra")

    def test_prepare_is_idempotent(self, vehicles_udb):
        sql = "possible (select id from r where type = $1)"
        assert prepare(sql, vehicles_udb) is prepare(sql, vehicles_udb)

    def test_prepare_rejects_ddl(self, vehicles_udb):
        with pytest.raises(ValueError):
            prepare("create index i on u_r_type (type)", vehicles_udb)

    def test_explain_marks_cached_after_first_run(self, vehicles_udb):
        stmt = prepare("possible (select id from r where type = $1)", vehicles_udb)
        cold = stmt.explain()
        assert "(cached)" not in cold.splitlines()[0] or cold  # first may be cold
        stmt.run("Tank")
        warm = stmt.explain()
        assert warm.splitlines()[0].endswith("(cached)")
        assert "$1" in warm  # the parameter slot shows in the plan

    def test_udatabase_prepare_convenience(self, vehicles_udb):
        stmt = vehicles_udb.prepare("possible (select id from r where type = $1)")
        assert isinstance(stmt, PreparedQuery)
        assert len(stmt.run("Tank")) > 0

    def test_parameter_free_statement_prepares(self, vehicles_udb):
        stmt = prepare("possible (select id from r where type = 'Tank')", vehicles_udb)
        assert stmt.parameter_count == 0
        first = stmt.run()
        misses = plan_cache_stats()["misses"]
        assert stmt.run() == first
        assert plan_cache_stats()["misses"] == misses

    def test_execute_sql_params_share_statement_cache(self, vehicles_udb):
        sql = "possible (select id from r where id < $1)"
        a = execute_sql(sql, vehicles_udb, params=(3,))
        misses = plan_cache_stats()["misses"]
        b = execute_sql(sql, vehicles_udb, params=(5,))
        assert plan_cache_stats()["misses"] == misses  # plan reused
        assert len(b) >= len(a)

    def test_execute_sql_missing_params_raises(self, vehicles_udb):
        with pytest.raises(ValueError):
            execute_sql(
                "possible (select id from r where id < $1)", vehicles_udb
            )

    def test_between_parameters(self, vehicles_udb):
        stmt = prepare(
            "possible (select id from r where id between $1 and $2)", vehicles_udb
        )
        both = stmt.run(1, 4)
        narrow = stmt.run(2, 3)
        assert set(narrow.rows) <= set(both.rows)
        reference = execute_sql(
            "possible (select id from r where id between 2 and 3)", vehicles_udb
        )
        assert narrow == reference

    def test_repeated_slot_reads_one_binding(self, vehicles_udb):
        stmt = prepare(
            "possible (select id from r where id = $1 or id < $1)", vehicles_udb
        )
        got = stmt.run(3)
        reference = execute_sql(
            "possible (select id from r where id = 3 or id < 3)", vehicles_udb
        )
        assert got == reference


class TestParamPointLookup:
    """Parameterized equality predicates become index point lookups that
    resolve the bound value per execution."""

    def test_param_point_lookup_uses_index_and_rebinds(self, vehicles_udb):
        # udb partitions auto-index their value columns (sorted)
        stmt = prepare("possible (select id from r where type = $1)", vehicles_udb)
        stmt.run("Tank")
        text = stmt.explain()
        assert "Index Scan" in text and "$1" in text
        # same cached plan, different binding, correct answer
        transports = stmt.run("Transport")
        reference = execute_sql(
            "possible (select id from r where type = 'Transport')", vehicles_udb
        )
        assert transports == reference


@given(
    st.lists(
        st.sampled_from(["Tank", "Transport", "NoSuchType", None]),
        min_size=1,
        max_size=8,
    ),
    st.sampled_from(["rows", "blocks", "columns"]),
)
@settings(max_examples=40, deadline=None)
def test_prepared_matches_literal_queries(bindings, mode):
    """Property: for any binding sequence and executor mode, the prepared
    query answers exactly what the literal query answers."""
    udb = build_vehicles_udb()
    stmt = prepare("possible (select id from r where type = $1)", udb)
    for value in bindings:
        got = stmt.run(value, mode=mode)
        if value is None:
            assert len(got) == 0
            continue
        literal = Poss(UProject(USelect(Rel("r"), col("type").eq(lit(value))), ["id"]))
        assert got == execute_query(literal, udb, mode=mode)
