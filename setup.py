"""Setup shim: enables ``python setup.py develop`` in environments without
the ``wheel`` package (modern ``pip install -e .`` needs to build a wheel).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
